"""CSV trace parsing and serialisation.

The Blox paper highlights that adding new workload parsers was part of
implementing Pollux and Synergy (their traces use a different schema).  We
support a simple canonical schema -- ``job_id, arrival_time, num_gpus,
duration, model_name`` -- which is enough to round-trip any trace produced by
the generators; model-specific profile fields are re-hydrated from the model
catalogue on load.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Union

from repro.core.exceptions import ConfigurationError, TraceFormatError
from repro.core.job import Job
from repro.workloads.models import PHILLY_MODELS, get_model
from repro.workloads.trace import Trace

REQUIRED_COLUMNS = ("job_id", "arrival_time", "num_gpus", "duration", "model_name")


def _parse_int(row: dict, column: str) -> int:
    """Parse an integer cell, naming the column on failure."""
    raw = row[column]
    if raw is None:
        raise TraceFormatError(f"column {column!r} is missing a value")
    try:
        return int(str(raw).strip())
    except ValueError:
        raise TraceFormatError(f"column {column!r} has non-integer value {raw!r}") from None


def _parse_float(row: dict, column: str) -> float:
    """Parse a finite float cell, naming the column on failure."""
    raw = row[column]
    if raw is None:
        raise TraceFormatError(f"column {column!r} is missing a value")
    try:
        value = float(str(raw).strip())
    except ValueError:
        raise TraceFormatError(f"column {column!r} has non-numeric value {raw!r}") from None
    if not math.isfinite(value):
        raise TraceFormatError(f"column {column!r} has non-finite value {raw!r}")
    return value


def save_trace_csv(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` in the canonical CSV schema; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(REQUIRED_COLUMNS)
        for job in trace.jobs:
            writer.writerow(
                [job.job_id, f"{job.arrival_time:.3f}", job.num_gpus, f"{job.duration:.3f}", job.model_name]
            )
    return path


def load_trace_csv(path: Union[str, Path], name: str = "") -> Trace:
    """Load a trace from the canonical CSV schema.

    Raises :class:`~repro.core.exceptions.TraceFormatError` when columns are
    missing or values cannot be parsed, naming the offending row.
    """
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"trace file not found: {path}")
    jobs: List[Job] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or any(c not in reader.fieldnames for c in REQUIRED_COLUMNS):
            raise TraceFormatError(
                f"trace {path} is missing required columns; expected {REQUIRED_COLUMNS}"
            )
        for row_number, row in enumerate(reader, start=2):
            try:
                model_cell = row["model_name"]
                model_name = (model_cell or "").strip().lower()
                job_id = _parse_int(row, "job_id")
                arrival_time = _parse_float(row, "arrival_time")
                num_gpus = _parse_int(row, "num_gpus")
                duration = _parse_float(row, "duration")
                if arrival_time < 0:
                    raise TraceFormatError(
                        f"column 'arrival_time' must be >= 0, got {arrival_time}"
                    )
                # Job.__post_init__ validates num_gpus/duration too, but
                # checking here names the offending column instead of only
                # the (possibly also malformed) job id.
                if num_gpus < 1:
                    raise TraceFormatError(f"column 'num_gpus' must be >= 1, got {num_gpus}")
                if duration <= 0:
                    raise TraceFormatError(f"column 'duration' must be > 0, got {duration}")
                if model_name in PHILLY_MODELS:
                    profile = get_model(model_name)
                    job = Job(
                        job_id=job_id,
                        arrival_time=arrival_time,
                        num_gpus=num_gpus,
                        duration=duration,
                        model_name=profile.name,
                        iteration_time=profile.iteration_time,
                        scaling=profile.scaling_profile(),
                        placement_sensitive=profile.placement_sensitive,
                        skew=profile.skew,
                        comm_intensity=profile.comm_intensity,
                        cpu_demand_per_gpu=profile.cpu_demand_per_gpu,
                        mem_demand_per_gpu=profile.mem_demand_per_gpu,
                        max_batch_scale=profile.max_batch_scale,
                    )
                else:
                    job = Job(
                        job_id=job_id,
                        arrival_time=arrival_time,
                        num_gpus=num_gpus,
                        duration=duration,
                        model_name=model_name or "generic",
                    )
            except (KeyError, ValueError, ConfigurationError) as exc:
                # KeyError: a short row left a required cell out entirely.
                # ConfigurationError: Job's own validation (and TraceFormatError
                # itself) -- re-raised with the file/row context attached.
                raise TraceFormatError(f"{path}:{row_number}: could not parse row: {exc}") from exc
            jobs.append(job)
    if not jobs:
        raise TraceFormatError(f"trace {path} contains no jobs")
    return Trace(jobs=jobs, name=name or path.stem)
