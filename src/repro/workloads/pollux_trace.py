"""Pollux-like workload trace generator.

The Pollux artifact ships a 160-job trace sampled from the busiest 8-hour
window of the Microsoft trace, annotated with the batch-size and convergence
metadata Pollux's goodput model needs.  That trace's properties that matter to
the paper's load-sweep (Figures 3, 8 and 9) are: relatively short jobs (the
majority finish within 10 hours in isolation), modest GPU demands, and the
presence of per-job batch-scaling limits.  This generator reproduces those
properties with a seeded random process; the Pollux-specific metadata
(``max_batch_scale``) comes from the model profiles.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.workloads.models import get_model, model_names
from repro.workloads.trace import Trace

#: GPU demand mix for the Pollux trace: smaller jobs than the full Philly mix.
POLLUX_GPU_DEMAND_MIX: Dict[int, float] = {1: 0.60, 2: 0.20, 4: 0.15, 8: 0.05}


def generate_pollux_trace(
    num_jobs: int = 160,
    jobs_per_hour: float = 20.0,
    seed: int = 0,
    median_duration_hours: float = 1.5,
    duration_sigma: float = 0.8,
    max_duration_hours: float = 10.0,
    tracked_window: Optional[tuple] = None,
) -> Trace:
    """Generate a Pollux-style trace of mostly short, mostly small jobs."""
    if num_jobs < 1:
        raise ConfigurationError("num_jobs must be >= 1")
    if jobs_per_hour <= 0:
        raise ConfigurationError("jobs_per_hour must be > 0")

    rng = random.Random(seed)
    names = model_names()
    mean_inter_arrival = 3600.0 / jobs_per_hour
    arrival = 0.0
    jobs = []
    for index in range(num_jobs):
        model = get_model(rng.choice(names))
        roll, cumulative, gpus = rng.random(), 0.0, 1
        for demand, probability in sorted(POLLUX_GPU_DEMAND_MIX.items()):
            cumulative += probability
            if roll <= cumulative:
                gpus = demand
                break
        else:
            gpus = max(POLLUX_GPU_DEMAND_MIX)
        mu = math.log(median_duration_hours * 3600.0)
        duration = min(
            max_duration_hours * 3600.0, max(600.0, rng.lognormvariate(mu, duration_sigma))
        )
        jobs.append(
            Job(
                job_id=index,
                arrival_time=arrival,
                num_gpus=gpus,
                duration=duration,
                model_name=model.name,
                iteration_time=model.iteration_time,
                scaling=model.scaling_profile(),
                placement_sensitive=model.placement_sensitive,
                skew=model.skew,
                comm_intensity=model.comm_intensity,
                cpu_demand_per_gpu=model.cpu_demand_per_gpu,
                mem_demand_per_gpu=model.mem_demand_per_gpu,
                max_batch_scale=model.max_batch_scale,
                user=f"user-{rng.randrange(8)}",
            )
        )
        arrival += rng.expovariate(1.0 / mean_inter_arrival)
    trace = Trace(jobs=jobs, name=f"pollux-{jobs_per_hour:g}jph-seed{seed}")
    if tracked_window is not None:
        trace.tracked_range = tracked_window
    return trace
