"""Convergence profiles for the loss-based termination study (Blox §5.3).

The Philly analysis found that ~75% of jobs reach within 0.1% of their lowest
loss after only ~40% of their epochs.  :func:`assign_convergence_profiles`
stamps that behaviour onto a trace: a seeded random 75% of jobs get a
``convergence_fraction`` of 0.4 (they converge early), the rest keep 1.0 (they
genuinely need all their epochs).  Epoch-based termination ignores the field;
loss-based termination stops the early-converging jobs at the 40% mark.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.core.exceptions import ConfigurationError
from repro.core.job import Job


def assign_convergence_profiles(
    jobs: Iterable[Job],
    fraction_of_jobs: float = 0.75,
    convergence_point: float = 0.4,
    seed: int = 0,
) -> List[Job]:
    """Mark a random fraction of jobs as converging early; returns the same jobs."""
    if not 0.0 <= fraction_of_jobs <= 1.0:
        raise ConfigurationError("fraction_of_jobs must be in [0, 1]")
    if not 0.0 < convergence_point <= 1.0:
        raise ConfigurationError("convergence_point must be in (0, 1]")
    rng = random.Random(seed)
    jobs = list(jobs)
    for job in jobs:
        if rng.random() < fraction_of_jobs:
            job.convergence_fraction = convergence_point
        else:
            job.convergence_fraction = 1.0
    return jobs
