"""Model profiles for the workloads used in the Blox evaluation (Table 2).

The paper associates every trace job with one of eight DNN workloads and uses
profiled data (per-iteration time across batch sizes and GPU counts) to drive
the simulator.  We encode each model as a :class:`ModelProfile` whose fields
capture the properties the schedulers and the execution model care about:

* per-iteration time on a single V100 (sets the work granularity),
* scaling efficiency with more GPUs (``scaling_alpha``, ``max_useful_gpus``),
* communication intensity and tensor skew (placement sensitivity and the
  Tiresias heuristic's signal),
* CPU / host-memory appetite per GPU (Synergy),
* the largest useful batch-size scale-out (Pollux).

The absolute values are order-of-magnitude estimates published in the
respective papers; only their relative differences matter for reproducing the
evaluation's qualitative results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.exceptions import ConfigurationError
from repro.core.job import ScalingProfile


@dataclass(frozen=True)
class ModelProfile:
    """Static profile of one DNN workload."""

    name: str
    dataset: str
    task: str
    iteration_time: float          # seconds per iteration on 1x V100
    scaling_alpha: float           # communication overhead per extra worker
    max_useful_gpus: int
    comm_intensity: float          # network sensitivity when fragmented
    skew: float                    # tensor-size skew (Tiresias heuristic signal)
    placement_sensitive: bool      # ground truth: benefits from consolidation
    cpu_demand_per_gpu: float
    mem_demand_per_gpu: float
    max_batch_scale: int           # Pollux: how far the batch size can grow

    def __post_init__(self) -> None:
        if self.iteration_time <= 0:
            raise ConfigurationError(f"{self.name}: iteration_time must be > 0")
        if self.comm_intensity < 0:
            raise ConfigurationError(f"{self.name}: comm_intensity must be >= 0")

    def scaling_profile(self) -> ScalingProfile:
        return ScalingProfile(alpha=self.scaling_alpha, max_useful_gpus=self.max_useful_gpus)


#: The eight workloads of Table 2 in the paper.
PHILLY_MODELS: Dict[str, ModelProfile] = {
    "resnet18": ModelProfile(
        name="resnet18", dataset="cifar-10", task="image classification",
        iteration_time=0.12, scaling_alpha=0.04, max_useful_gpus=16,
        comm_intensity=0.15, skew=0.2, placement_sensitive=False,
        cpu_demand_per_gpu=3.0, mem_demand_per_gpu=12.0, max_batch_scale=8,
    ),
    "cyclegan": ModelProfile(
        name="cyclegan", dataset="monet2photo", task="image-to-image translation",
        iteration_time=0.60, scaling_alpha=0.08, max_useful_gpus=8,
        comm_intensity=0.45, skew=0.7, placement_sensitive=True,
        cpu_demand_per_gpu=4.0, mem_demand_per_gpu=20.0, max_batch_scale=2,
    ),
    "resnet50": ModelProfile(
        name="resnet50", dataset="imagenet", task="image classification",
        iteration_time=0.35, scaling_alpha=0.05, max_useful_gpus=32,
        comm_intensity=0.35, skew=0.3, placement_sensitive=True,
        cpu_demand_per_gpu=12.0, mem_demand_per_gpu=24.0, max_batch_scale=8,
    ),
    "lstm": ModelProfile(
        name="lstm", dataset="wikitext-2", task="next word prediction",
        iteration_time=0.25, scaling_alpha=0.10, max_useful_gpus=8,
        comm_intensity=0.55, skew=0.8, placement_sensitive=True,
        cpu_demand_per_gpu=2.0, mem_demand_per_gpu=10.0, max_batch_scale=4,
    ),
    "recoder": ModelProfile(
        name="recoder", dataset="ml-20m", task="recommendation",
        iteration_time=0.20, scaling_alpha=0.12, max_useful_gpus=8,
        comm_intensity=0.60, skew=0.9, placement_sensitive=True,
        cpu_demand_per_gpu=8.0, mem_demand_per_gpu=32.0, max_batch_scale=4,
    ),
    "transformer": ModelProfile(
        name="transformer", dataset="multi30k", task="language translation",
        iteration_time=0.45, scaling_alpha=0.07, max_useful_gpus=16,
        comm_intensity=0.50, skew=0.6, placement_sensitive=True,
        cpu_demand_per_gpu=4.0, mem_demand_per_gpu=20.0, max_batch_scale=8,
    ),
    "a3c": ModelProfile(
        name="a3c", dataset="pong", task="deep reinforcement learning",
        iteration_time=0.05, scaling_alpha=0.02, max_useful_gpus=4,
        comm_intensity=0.05, skew=0.1, placement_sensitive=False,
        cpu_demand_per_gpu=10.0, mem_demand_per_gpu=8.0, max_batch_scale=2,
    ),
    "vgg16": ModelProfile(
        name="vgg16", dataset="imagenet", task="image classification",
        iteration_time=0.55, scaling_alpha=0.09, max_useful_gpus=16,
        comm_intensity=0.65, skew=0.85, placement_sensitive=True,
        cpu_demand_per_gpu=6.0, mem_demand_per_gpu=24.0, max_batch_scale=4,
    ),
}


def model_names() -> List[str]:
    """Stable, sorted list of profile names (useful for deterministic sampling)."""
    return sorted(PHILLY_MODELS)


def get_model(name: str) -> ModelProfile:
    key = name.lower()
    if key not in PHILLY_MODELS:
        known = ", ".join(model_names())
        raise ConfigurationError(f"unknown model {name!r}; known models: {known}")
    return PHILLY_MODELS[key]
