"""Workloads: model profiles, trace schema and trace generators."""

from repro.workloads.models import ModelProfile, PHILLY_MODELS, get_model, model_names
from repro.workloads.trace import Trace
from repro.workloads.philly import PhillyTraceGenerator, generate_philly_trace
from repro.workloads.pollux_trace import generate_pollux_trace
from repro.workloads.tiresias_trace import generate_tiresias_trace
from repro.workloads.bursty import add_daily_spike, add_spike, make_bursty_trace
from repro.workloads.parsers import load_trace_csv, save_trace_csv
from repro.workloads.convergence import assign_convergence_profiles

__all__ = [
    "ModelProfile",
    "PHILLY_MODELS",
    "get_model",
    "model_names",
    "Trace",
    "PhillyTraceGenerator",
    "generate_philly_trace",
    "generate_pollux_trace",
    "generate_tiresias_trace",
    "add_daily_spike",
    "add_spike",
    "make_bursty_trace",
    "load_trace_csv",
    "save_trace_csv",
    "assign_convergence_profiles",
]
