"""Independent Synergy reference simulator (Proportional and Tune modes).

Stand-in for the Synergy artifact in the Fig. 5 reproduction.  The simulator
models CPU sensitivity directly: in Proportional mode every job receives the
GPU-proportional CPU share of a node, so CPU-hungry jobs are throttled; in Tune
mode jobs receive their profiled demand (when the node can supply it).  The
throttling formula matches the one used by the Blox-side launch mechanism so
the two code paths are comparable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.reference import ReferenceJob, simulate_reference
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job


def simulate_synergy_reference(
    jobs: Sequence[Job],
    total_gpus: int,
    mode: str = "tune",
    cpu_per_node: float = 32.0,
    gpus_per_node: int = 4,
    round_duration: float = 300.0,
) -> List[ReferenceJob]:
    """Run the trace through an independently coded resource-sensitive scheduler."""
    if mode not in ("proportional", "tune"):
        raise ConfigurationError(f"mode must be 'proportional' or 'tune', got {mode!r}")
    proportional_cpu_per_gpu = cpu_per_node / gpus_per_node

    reference_jobs = [
        ReferenceJob(
            job_id=j.job_id,
            arrival_time=j.arrival_time,
            num_gpus=j.num_gpus,
            duration=j.duration,
            scaling_alpha=j.scaling.alpha,
            max_useful_gpus=j.scaling.max_useful_gpus,
            cpu_demand_per_gpu=j.cpu_demand_per_gpu,
        )
        for j in jobs
    ]

    def cpu_factor(job: ReferenceJob, gpus: int) -> float:
        demand = job.cpu_demand_per_gpu * gpus
        if mode == "tune":
            # Tune gives each job its profiled demand (the single-pool model has
            # no per-node capacity pressure to clip against).
            granted = demand
        else:
            granted = proportional_cpu_per_gpu * gpus
        share = 1.0 if demand <= 0 else min(1.0, granted / demand)
        return 0.4 + 0.6 * share

    def policy(active: List[ReferenceJob], capacity: int, now: float) -> Dict[int, int]:
        allocation: Dict[int, int] = {}
        remaining = capacity
        for job in sorted(active, key=lambda j: (j.arrival_time, j.job_id)):
            if job.num_gpus <= remaining:
                allocation[job.job_id] = job.num_gpus
                remaining -= job.num_gpus
        return allocation

    return simulate_reference(
        reference_jobs,
        total_gpus,
        policy,
        round_duration=round_duration,
        rate_modifier=cpu_factor,
    )
