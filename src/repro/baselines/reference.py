"""A minimal, standalone round-based scheduler simulator.

This simulator intentionally shares no code with :mod:`repro.core` or
:mod:`repro.simulator`: it is the independent implementation the reproduction
experiments (Figs. 3-5) compare the Blox-style implementation against.  It
models a cluster as a single pool of GPUs (no placement effects), advances in
fixed rounds, and delegates per-round allocation to a policy callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.exceptions import ConfigurationError, SimulationError


@dataclass
class ReferenceJob:
    """Plain job record for the reference simulator."""

    job_id: int
    arrival_time: float
    num_gpus: int
    duration: float
    scaling_alpha: float = 0.05
    max_useful_gpus: int = 16
    cpu_demand_per_gpu: float = 3.0
    # dynamic
    work_done: float = 0.0
    attained_service: float = 0.0
    completion_time: Optional[float] = None
    first_schedule_time: Optional[float] = None

    def speedup(self, gpus: int) -> float:
        if gpus <= 0:
            return 0.0
        effective = min(gpus, self.max_useful_gpus)
        return effective / (1.0 + self.scaling_alpha * (effective - 1))

    def rate(self, gpus: int) -> float:
        """Progress per wall-clock second relative to the requested allocation."""
        base = self.speedup(self.num_gpus)
        if base <= 0:
            return 0.0
        return self.speedup(gpus) / base

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def remaining(self) -> float:
        return max(0.0, self.duration - self.work_done)


#: A policy maps (active jobs, total gpus, now) -> {job_id: allocated gpus}.
AllocationPolicy = Callable[[List[ReferenceJob], int, float], Dict[int, int]]


def simulate_reference(
    jobs: Sequence[ReferenceJob],
    total_gpus: int,
    policy: AllocationPolicy,
    round_duration: float = 300.0,
    rate_modifier: Optional[Callable[[ReferenceJob, int], float]] = None,
    max_rounds: int = 500_000,
) -> List[ReferenceJob]:
    """Run the reference simulation to completion and return the jobs.

    ``rate_modifier(job, gpus)`` optionally scales a job's progress rate (used
    by the Synergy reference to model CPU throttling).
    """
    if total_gpus < 1:
        raise ConfigurationError("total_gpus must be >= 1")
    pending = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
    active: List[ReferenceJob] = []
    done: List[ReferenceJob] = []
    now = 0.0
    for _ in range(max_rounds):
        while pending and pending[0].arrival_time <= now:
            active.append(pending.pop(0))
        if not pending and not active:
            break

        allocation = policy(active, total_gpus, now) if active else {}
        used = sum(max(0, g) for g in allocation.values())
        if used > total_gpus:
            raise SimulationError(
                f"reference policy allocated {used} GPUs but only {total_gpus} exist"
            )

        for job in list(active):
            gpus = max(0, allocation.get(job.job_id, 0))
            if gpus == 0:
                continue
            if job.first_schedule_time is None:
                job.first_schedule_time = now
            rate = job.rate(gpus)
            if rate_modifier is not None:
                rate *= rate_modifier(job, gpus)
            if rate <= 0:
                continue
            time_needed = job.remaining / rate
            if time_needed <= round_duration:
                job.work_done = job.duration
                job.completion_time = now + time_needed
                job.attained_service += gpus * time_needed
                active.remove(job)
                done.append(job)
            else:
                job.work_done += round_duration * rate
                job.attained_service += gpus * round_duration
        now += round_duration
    else:
        raise SimulationError("reference simulation did not converge within max_rounds")
    return done + active + pending


def average_jct(jobs: Sequence[ReferenceJob]) -> float:
    """Mean JCT across finished jobs of a reference simulation."""
    finished = [j for j in jobs if j.finished]
    if not finished:
        return 0.0
    return sum(j.completion_time - j.arrival_time for j in finished) / len(finished)


def jct_list(jobs: Sequence[ReferenceJob]) -> List[float]:
    return sorted(
        j.completion_time - j.arrival_time for j in jobs if j.completion_time is not None
    )
