"""Independent Pollux (goodput-driven elastic) reference simulator.

Stand-in for the Pollux artifact simulator in the Fig. 3 reproduction: an
elastic allocator that never preempts running jobs, grows allocations by
marginal goodput and queues excess jobs, coded against the reference simulator
rather than the Blox abstractions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.baselines.reference import ReferenceJob, simulate_reference
from repro.core.job import Job


def simulate_pollux_reference(
    jobs: Sequence[Job],
    total_gpus: int,
    round_duration: float = 300.0,
    efficiency_decay: float = 0.03,
) -> List[ReferenceJob]:
    """Run the trace through an independently coded goodput-maximising allocator."""
    reference_jobs = [
        ReferenceJob(
            job_id=j.job_id,
            arrival_time=j.arrival_time,
            num_gpus=j.num_gpus,
            duration=j.duration,
            scaling_alpha=j.scaling.alpha,
            max_useful_gpus=j.scaling.max_useful_gpus,
        )
        for j in jobs
    ]
    batch_scale = {j.job_id: max(1, j.max_batch_scale) for j in jobs}
    started: Set[int] = set()

    def goodput(job: ReferenceJob, gpus: int) -> float:
        if gpus <= 0:
            return 0.0
        efficiency = 1.0 / (1.0 + efficiency_decay * (gpus - 1))
        return job.speedup(gpus) * efficiency

    def policy(active: List[ReferenceJob], capacity: int, now: float) -> Dict[int, int]:
        allocation: Dict[int, int] = {job.job_id: 0 for job in active}
        remaining = capacity
        # Jobs that have already started keep at least one GPU (no preemption).
        for job in sorted(active, key=lambda j: (j.arrival_time, j.job_id)):
            if job.job_id in started and remaining > 0:
                allocation[job.job_id] = 1
                remaining -= 1
        while remaining > 0:
            best_id, best_gain = None, 1e-12
            for job in active:
                gpus = allocation[job.job_id]
                cap = min(job.max_useful_gpus, job.num_gpus * batch_scale[job.job_id])
                if gpus >= cap:
                    continue
                gain = goodput(job, gpus + 1) - goodput(job, gpus)
                if gain > best_gain:
                    best_gain, best_id = gain, job.job_id
            if best_id is None:
                break
            allocation[best_id] += 1
            remaining -= 1
        for job_id, gpus in allocation.items():
            if gpus > 0:
                started.add(job_id)
        return allocation

    return simulate_reference(
        reference_jobs, total_gpus, policy, round_duration=round_duration
    )
