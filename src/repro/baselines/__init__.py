"""Independent reference simulators used as "author implementation" stand-ins.

The paper validates its scheduler implementations by comparing Blox against the
schedulers' open-source simulators (Figs. 3-5).  Those artifacts are not
redistributable here, so this package provides deliberately *independent*
implementations of the same policies: compact, straight-line simulators that do
not share code with the Blox abstractions.  Agreement between the two code
paths plays the role the author implementations play in the paper.
"""

from repro.baselines.reference import ReferenceJob, simulate_reference
from repro.baselines.tiresias_reference import simulate_tiresias_reference
from repro.baselines.pollux_reference import simulate_pollux_reference
from repro.baselines.synergy_reference import simulate_synergy_reference

__all__ = [
    "ReferenceJob",
    "simulate_reference",
    "simulate_tiresias_reference",
    "simulate_pollux_reference",
    "simulate_synergy_reference",
]
