"""Independent Tiresias (discrete 2D-LAS) reference simulator.

Used as the stand-in for the Tiresias open-source simulator in the Fig. 4
reproduction: the Blox-style Tiresias implementation and this straight-line
implementation are run on the same trace and their JCT CDFs compared.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.reference import ReferenceJob, simulate_reference
from repro.core.job import Job


def _to_reference_jobs(jobs: Sequence[Job]) -> List[ReferenceJob]:
    return [
        ReferenceJob(
            job_id=j.job_id,
            arrival_time=j.arrival_time,
            num_gpus=j.num_gpus,
            duration=j.duration,
            scaling_alpha=j.scaling.alpha,
            max_useful_gpus=j.scaling.max_useful_gpus,
            cpu_demand_per_gpu=j.cpu_demand_per_gpu,
        )
        for j in jobs
    ]


def simulate_tiresias_reference(
    jobs: Sequence[Job],
    total_gpus: int,
    round_duration: float = 300.0,
    queue_thresholds: Sequence[float] = (3600.0, 8 * 3600.0),
) -> List[ReferenceJob]:
    """Run the trace through an independently coded discrete-LAS simulator."""
    thresholds = list(queue_thresholds)

    def queue_of(job: ReferenceJob) -> int:
        for index, threshold in enumerate(thresholds):
            if job.attained_service < threshold:
                return index
        return len(thresholds)

    def policy(active: List[ReferenceJob], capacity: int, now: float) -> Dict[int, int]:
        allocation: Dict[int, int] = {}
        remaining = capacity
        ordered = sorted(active, key=lambda j: (queue_of(j), j.arrival_time, j.job_id))
        for job in ordered:
            if job.num_gpus <= remaining:
                allocation[job.job_id] = job.num_gpus
                remaining -= job.num_gpus
        return allocation

    return simulate_reference(
        _to_reference_jobs(jobs), total_gpus, policy, round_duration=round_duration
    )
