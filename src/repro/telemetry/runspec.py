"""Replayable run descriptions: record once, re-drive bit-identically.

A :class:`RunSpec` is a plain-data description of a run -- mode, policy and
placement names (resolved through registries, never pickled objects), seed,
workload size, cluster shape, federation layout.  It is stored in every
recorded trace's header, which makes the trace *self-replaying*:
``python -m repro.trace replay trace.jsonl`` rebuilds the exact run from the
header and diffs the fresh event stream against the recorded one.  Because
every run here is a deterministic function of (spec, seed) -- policies draw
no unseeded randomness, the workload generator is seeded, routing is
deterministic -- the two streams must be byte-identical; a non-empty diff
means the code's scheduling behaviour changed since the recording, which is
exactly what an operator debugging a drifted run wants surfaced.

Three modes cover the repo's execution paths:

* ``core`` -- the plain :class:`~repro.simulator.engine.Simulator`;
* ``runtime`` -- the deployment path
  (:class:`~repro.runtime.central_scheduler.CentralScheduler`, optimistic
  leases, deterministic overheads), adding lease + rpc-faults events;
* ``federation`` -- the serial federation engine, adding per-shard round
  streams plus routing events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

from repro.telemetry.events import TraceFormatError, TraceHeader, run_metadata
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.sinks import TraceSink

MODES = ("core", "runtime", "federation")


def _policy_factories() -> Dict[str, type]:
    from repro.policies.scheduling import (
        FifoScheduling,
        LasScheduling,
        SrtfScheduling,
        TiresiasScheduling,
    )

    return {
        "fifo": FifoScheduling,
        "srtf": SrtfScheduling,
        "las": LasScheduling,
        "tiresias": TiresiasScheduling,
    }


def _placement_factories() -> Dict[str, type]:
    from repro.policies.placement.consolidated import ConsolidatedPlacement
    from repro.policies.placement.first_free import FirstFreePlacement

    return {
        "consolidated": ConsolidatedPlacement,
        "first-free": FirstFreePlacement,
    }


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to re-drive a recorded run, as plain data."""

    mode: str = "core"
    policy: str = "fifo"
    placement: str = "consolidated"
    seed: int = 20240301
    num_jobs: int = 60
    jobs_per_hour: float = 4.0
    num_nodes: int = 8
    gpus_per_node: int = 4
    round_duration: float = 300.0
    #: Federation only: shard count (``num_nodes`` must divide evenly) and
    #: router name from the router registry.
    shards: int = 2
    router: str = "round-robin"
    #: Core mode only: run under a named scenario from the scenario registry.
    #: The scenario then supplies cluster, workload, round duration and the
    #: churn timeline (whose firings record as ``cluster`` events);
    #: ``num_jobs``/``num_nodes``/... above are ignored.  ``scenario_smoke``
    #: selects the registry's shrunk smoke variant.
    scenario: Optional[str] = None
    scenario_smoke: bool = False
    #: Simulation engine: the classic round loop (``rounds``, the
    #: differential oracle) or the event-heap core (``events``).  Both must
    #: produce bit-identical schedules, so a trace recorded under one engine
    #: replays cleanly under either -- but the engine is part of the spec so
    #: a replay re-drives the run exactly as recorded.
    engine: str = "rounds"

    def __post_init__(self) -> None:
        from repro.federation.router import ROUTER_FACTORIES

        if self.mode not in MODES:
            raise TraceFormatError(f"unknown run mode {self.mode!r}; expected {MODES}")
        if self.engine not in ("rounds", "events"):
            raise TraceFormatError(
                f"unknown engine {self.engine!r}; expected 'rounds' or 'events'"
            )
        if self.policy not in _policy_factories():
            raise TraceFormatError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{sorted(_policy_factories())}"
            )
        if self.placement not in _placement_factories():
            raise TraceFormatError(
                f"unknown placement {self.placement!r}; expected one of "
                f"{sorted(_placement_factories())}"
            )
        if self.num_jobs < 1 or self.num_nodes < 1:
            raise TraceFormatError("num_jobs and num_nodes must be >= 1")
        if self.scenario is not None:
            from repro.scenarios.registry import scenario_names

            if self.mode != "core":
                raise TraceFormatError(
                    "scenario runs are core-mode only (the runtime/federation "
                    "paths wire their own scenario managers)"
                )
            if self.scenario not in scenario_names():
                raise TraceFormatError(
                    f"unknown scenario {self.scenario!r}; expected one of "
                    f"{scenario_names()}"
                )
        if self.mode == "federation":
            if self.shards < 1 or self.num_nodes % self.shards != 0:
                raise TraceFormatError(
                    f"shards ({self.shards}) must divide num_nodes ({self.num_nodes})"
                )
            if self.router not in ROUTER_FACTORIES:
                raise TraceFormatError(
                    f"unknown router {self.router!r}; expected one of "
                    f"{sorted(ROUTER_FACTORIES)}"
                )

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise TraceFormatError(
                f"run spec has unknown fields {sorted(unknown)}; "
                "was it recorded by a newer version?"
            )
        return cls(**record)

    # ------------------------------------------------------------------

    def _trace(self):
        from repro.workloads.philly import generate_philly_trace

        return generate_philly_trace(
            num_jobs=self.num_jobs, jobs_per_hour=self.jobs_per_hour, seed=self.seed
        )

    def _cluster(self, num_nodes: Optional[int] = None):
        from repro.cluster.builder import build_cluster

        return build_cluster(
            num_nodes=num_nodes if num_nodes is not None else self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            gpu_type="v100",
            network_bw_gbps=10.0,
        )

    def header(self, started_at: Optional[float] = None) -> TraceHeader:
        """The self-describing trace header for a recording of this spec."""
        return TraceHeader(
            metadata=run_metadata(self.seed, self.as_dict(), started_at),
            spec=self.as_dict(),
        )


def run_recorded(
    spec: RunSpec,
    sink: TraceSink,
    started_at: Optional[float] = None,
    write_header: bool = True,
) -> None:
    """Execute ``spec`` start to finish, streaming its events into ``sink``.

    The caller owns the sink (and closes it); ``started_at`` is the caller's
    wall clock for the header stamp and never enters any event payload.
    """
    if write_header:
        sink.write_header(spec.header(started_at))
    if spec.mode == "core":
        _run_core(spec, sink)
    elif spec.mode == "runtime":
        _run_runtime(spec, sink)
    else:
        _run_federation(spec, sink)
    flush = getattr(sink, "flush", None)
    if flush is not None:
        flush()


def _run_core(spec: RunSpec, sink: TraceSink) -> None:
    from repro.simulator.engine import Simulator

    if spec.scenario is not None:
        from repro.scenarios.registry import get_scenario

        compiled = get_scenario(spec.scenario, smoke=spec.scenario_smoke).compile(
            seed=spec.seed
        )
        Simulator(
            cluster_state=compiled.build_cluster(),
            jobs=compiled.trace.fresh_jobs(),
            scheduling_policy=_policy_factories()[spec.policy](),
            placement_policy=_placement_factories()[spec.placement](),
            round_duration=compiled.spec.round_duration,
            cluster_manager=compiled.make_cluster_manager(),
            tracked_job_ids=compiled.trace.tracked_ids(),
            recorder=TraceRecorder(sink, source="sim"),
            engine=spec.engine,
        ).run()
        return

    Simulator(
        cluster_state=spec._cluster(),
        jobs=spec._trace().fresh_jobs(),
        scheduling_policy=_policy_factories()[spec.policy](),
        placement_policy=_placement_factories()[spec.placement](),
        round_duration=spec.round_duration,
        recorder=TraceRecorder(sink, source="sim"),
        engine=spec.engine,
    ).run()


def _run_runtime(spec: RunSpec, sink: TraceSink) -> None:
    from repro.runtime.central_scheduler import CentralScheduler
    from repro.simulator.overheads import OverheadModel

    CentralScheduler(
        cluster_state=spec._cluster(),
        jobs=spec._trace().fresh_jobs(),
        scheduling_policy=_policy_factories()[spec.policy](),
        placement_policy=_placement_factories()[spec.placement](),
        round_duration=spec.round_duration,
        lease_protocol="optimistic",
        overhead_model=OverheadModel(),
        recorder=TraceRecorder(sink, source="runtime"),
        engine=spec.engine,
    ).run()


def _run_federation(spec: RunSpec, sink: TraceSink) -> None:
    from repro.federation.engine import FederationEngine
    from repro.federation.router import make_router
    from repro.federation.shard import ShardSimulator

    nodes_per_shard = spec.num_nodes // spec.shards
    shards: List[ShardSimulator] = []
    for shard_id in range(spec.shards):
        shards.append(
            ShardSimulator(
                shard_id=shard_id,
                cluster_state=spec._cluster(num_nodes=nodes_per_shard),
                scheduling_policy=_policy_factories()[spec.policy](),
                placement_policy=_placement_factories()[spec.placement](),
                round_duration=spec.round_duration,
                recorder=TraceRecorder(sink, source=f"shard{shard_id}"),
                engine=spec.engine,
            )
        )
    FederationEngine(
        shards=shards,
        router=make_router(spec.router),
        jobs=spec._trace().fresh_jobs(),
        recorder=TraceRecorder(sink, source="federation"),
    ).run()
