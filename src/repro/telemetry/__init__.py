"""Streaming telemetry: typed trace events, pluggable sinks, replay tooling.

See ``docs/observability.md``.  The layer has four parts:

* :mod:`repro.telemetry.events` -- the versioned event schema
  (:class:`TraceEvent`, :class:`TraceHeader`, :func:`run_metadata`);
* :mod:`repro.telemetry.sinks` -- JSONL / SQLite / ring-buffer sinks plus
  readers and the incremental :class:`TraceFollower`;
* :mod:`repro.telemetry.recorder` -- :class:`TraceRecorder` (per-source
  monotonic sequence numbers) and the job-transition observer;
* :mod:`repro.telemetry.runspec` / :mod:`repro.telemetry.diff` -- replayable
  run descriptions and stream diffing, the engine behind
  ``python -m repro.trace`` (imported lazily: runspec depends on the
  simulator, which itself records through this package).
"""

from repro.telemetry.events import (
    EVENT_DECISION,
    EVENT_EVICTION,
    EVENT_FEDERATION,
    EVENT_JOB,
    EVENT_LEASE,
    EVENT_ROUND,
    EVENT_ROUTE,
    EVENT_RPC_FAULTS,
    EVENT_SUPERVISOR,
    EVENT_TIMING,
    NONDETERMINISTIC_KINDS,
    SCHEMA_VERSION,
    TraceEvent,
    TraceFormatError,
    TraceHeader,
    config_hash,
    merge_events,
    run_metadata,
)
from repro.telemetry.recorder import TelemetryObserver, TraceRecorder
from repro.telemetry.sinks import (
    JsonlSink,
    RingBufferSink,
    SqliteSink,
    TraceFollower,
    TraceSink,
    open_sink,
    read_trace,
)

__all__ = [
    "SCHEMA_VERSION",
    "NONDETERMINISTIC_KINDS",
    "EVENT_ROUND",
    "EVENT_JOB",
    "EVENT_DECISION",
    "EVENT_EVICTION",
    "EVENT_ROUTE",
    "EVENT_LEASE",
    "EVENT_RPC_FAULTS",
    "EVENT_FEDERATION",
    "EVENT_TIMING",
    "EVENT_SUPERVISOR",
    "TraceEvent",
    "TraceHeader",
    "TraceFormatError",
    "config_hash",
    "run_metadata",
    "merge_events",
    "TraceRecorder",
    "TelemetryObserver",
    "TraceSink",
    "JsonlSink",
    "SqliteSink",
    "RingBufferSink",
    "TraceFollower",
    "open_sink",
    "read_trace",
]
