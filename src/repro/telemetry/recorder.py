"""The TraceRecorder: per-source monotonic event emission into one sink.

A recorder binds one ``source`` name to a sink and stamps every event with
the next sequence number for that source.  Multiple recorders (sources) may
share one sink -- the serial federation engine records its own routing
events as ``"federation"`` while each in-process shard records rounds as
``"shard<N>"`` into the same file; readers regroup by source and merge with
:func:`~repro.telemetry.events.merge_events`.

Recording must never perturb the schedule.  Every emission point in the
engine only *reads* state (no RNG draws, no state writes), and the job
observer below deliberately does not override ``on_progress`` -- the
registry's progress fan-out only dispatches to overriding observers, so the
two-writes-per-running-job-per-round hot path stays untouched.  The parity
tests in ``tests/test_telemetry.py`` hold a traced run bit-identical to an
untraced one.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.job import Job, JobStatus
from repro.core.job_state import JobStateObserver
from repro.telemetry.events import EVENT_JOB, TraceHeader
from repro.telemetry.sinks import TraceSink

#: Emit one rpc-faults counter snapshot every this many RPC calls.
DEFAULT_RPC_STATS_INTERVAL = 1024
#: Emit one federation state snapshot every this many routing pauses.
DEFAULT_FEDERATION_INTERVAL = 16


class TraceRecorder:
    """Append typed events for one ``source`` with monotonic sequence numbers."""

    def __init__(self, sink: TraceSink, source: str = "sim") -> None:
        self.sink = sink
        self.source = source
        # emit(kind, time, payload) is the hot path: one sink-bound closure
        # frame that owns this source's sequence counter.
        self.emit: Callable[[str, float, Dict[str, object]], None] = (
            sink.bind_emitter(source)
        )

    def scoped(self, source: str) -> "TraceRecorder":
        """A sibling recorder on the same sink with its own source + sequence."""
        return TraceRecorder(self.sink, source=source)

    def write_header(self, header: TraceHeader) -> None:
        self.sink.write_header(header)

    def close(self) -> None:
        self.sink.close()


_TERMINAL = (JobStatus.COMPLETED, JobStatus.TERMINATED, JobStatus.FAILED)
#: ``Enum.name`` is a DynamicClassAttribute lookup -- precompute it once.
_STATUS_NAMES = {status: status.name for status in JobStatus}


class TelemetryObserver(JobStateObserver):
    """Streams job lifecycle transitions as ``job`` events.

    ``clock`` supplies the simulated time at emission (the engine passes the
    BloxManager clock).  ``on_progress`` is intentionally *not* overridden:
    the registry only fans progress writes out to overriding observers, so
    attaching this observer adds zero per-round progress cost.

    The registry holds observers weakly -- whoever attaches one must keep a
    strong reference (the Simulator stores it on the instance).
    """

    def __init__(self, recorder: TraceRecorder, clock) -> None:
        self.recorder = recorder
        # ``clock`` is any object with a ``current_time`` attribute (the
        # engine passes its BloxManager); reading the attribute per event is
        # one frame cheaper than calling a closure.
        self.clock = clock

    def on_job_tracked(self, job: Job) -> None:
        self.recorder.emit(
            EVENT_JOB,
            self.clock.current_time,
            {"job_id": job.job_id, "op": "tracked", "num_gpus": job.num_gpus},
        )

    def on_status_change(
        self, job: Job, old: Optional[JobStatus], new: JobStatus
    ) -> None:
        payload: Dict[str, object] = {
            "job_id": job.job_id,
            "op": "status",
            "from": _STATUS_NAMES[old] if old is not None else None,
            "to": _STATUS_NAMES[new],
        }
        if new in _TERMINAL and job.completion_time is not None:
            payload["jct"] = job.completion_time - job.arrival_time
        self.recorder.emit(EVENT_JOB, self.clock.current_time, payload)
