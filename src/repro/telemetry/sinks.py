"""Pluggable trace sinks: JSONL file, SQLite database, in-memory ring buffer.

A sink accepts one :class:`~repro.telemetry.events.TraceHeader` followed by
any number of :class:`~repro.telemetry.events.TraceEvent` records.  All three
stock sinks are stdlib-only and append-oriented:

* :class:`JsonlSink` -- one JSON object per line; the first line is the
  header (recognisable by its ``schema_version`` key).  The cheapest sink
  and the one the dashboard tails.
* :class:`SqliteSink` -- ``header``/``events`` tables, batched inserts.
  Queryable after the fact (``sqlite3 trace.db 'select kind, count(*) ...'``).
* :class:`RingBufferSink` -- bounded in-memory buffer for live consumers and
  tests; never touches the filesystem.

:func:`read_trace` loads either file format back (sniffing the SQLite magic
bytes, so extensions are free-form), and :class:`TraceFollower` incrementally
polls a growing trace file -- the mechanism behind
``python -m repro.dashboard``'s live view.

File sinks intentionally refuse pickling: a recorder crossing a process
boundary (e.g. into a supervised federation worker that will be checkpointed)
would otherwise re-emit duplicate records after restore.  Worker-side
tracing instead opens its sinks *inside* the worker (see
``UniformShardFactory.trace_dir``).
"""

from __future__ import annotations

import collections
import io
import json
import os
import sqlite3
from typing import Deque, Iterator, List, Optional, Tuple

from repro.telemetry.events import (
    TraceEvent,
    TraceFormatError,
    TraceHeader,
)

_SQLITE_MAGIC = b"SQLite format 3\x00"


class TraceSink:
    """Interface: ``write_header`` once, ``emit`` many, ``close`` once."""

    def write_header(self, header: TraceHeader) -> None:
        raise NotImplementedError

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def emit_record(
        self, source: str, seq: int, time: float, kind: str, payload
    ) -> None:
        """Field-wise emission: the recorder's hot path.

        File sinks override this to serialise straight from the fields,
        skipping the TraceEvent allocation per event; the default simply
        wraps the fields for :meth:`emit`.
        """
        self.emit(TraceEvent(source, seq, time, kind, payload))

    def bind_emitter(self, source: str):
        """A fused ``emit(kind, time, payload)`` closure for one source.

        Owns that source's monotonic sequence counter, so the whole
        recorder -> sink path is one closure frame per event.  File sinks
        override this to bind their write handle directly.
        """
        emit_record = self.emit_record
        seq = 0

        def emit(kind: str, time: float, payload) -> None:
            nonlocal seq
            seq += 1
            emit_record(source, seq, time, kind, payload)

        return emit

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# One shared C-accelerated encoder: json.dumps with non-default options
# builds a fresh JSONEncoder per call, which the per-event hot path below
# cannot afford.  ensure_ascii=False matches orjson's raw-UTF-8 output, so
# the canonical trace bytes are identical with or without the accelerator.
_ENCODE = json.JSONEncoder(
    ensure_ascii=False, sort_keys=True, separators=(",", ":")
).encode

try:  # optional accelerator; the stdlib encoder below is the fallback
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on the environment
    _orjson = None

if _orjson is not None:
    # orjson with OPT_SORT_KEYS produces the same compact sorted form as
    # the stdlib encoder above at ~5x less per-event cost, which is what
    # keeps recording inside the bench's overhead gate.
    def _encode_json(
        obj, _dumps=_orjson.dumps, _opt=_orjson.OPT_SORT_KEYS
    ) -> str:
        return _dumps(obj, option=_opt).decode()

    def _encode_line(
        record,
        _dumps=_orjson.dumps,
        _opt=_orjson.OPT_SORT_KEYS | _orjson.OPT_APPEND_NEWLINE,
    ) -> bytes:
        return _dumps(record, option=_opt)

else:
    _encode_json = _ENCODE

    def _encode_line(record) -> bytes:
        return (_ENCODE(record) + "\n").encode("utf-8")


class JsonlSink(TraceSink):
    """Append-only JSON-lines sink; deterministic byte output for a given stream."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        # Binary handle: lines are encoded straight to UTF-8 bytes, skipping
        # the TextIOWrapper layer on the per-event hot path.
        self._handle: Optional[io.BufferedWriter] = open(self.path, "wb")

    def write_header(self, header: TraceHeader) -> None:
        self._write_line(header.as_record())

    def emit(self, event: TraceEvent) -> None:
        self.emit_record(*event)

    def emit_record(
        self, source: str, seq: int, time: float, kind: str, payload
    ) -> None:
        # One encoder call for the whole line, byte-identical to
        # dumps(event.as_record(), ensure_ascii=False, sort_keys=True,
        # separators=(",", ":")).  This is the engine's per-round write --
        # every dict copy, throwaway encoder or intermediate TraceEvent here
        # shows up in the bench's recording-overhead gate.
        handle = self._handle
        if handle is None:
            raise TraceFormatError(f"trace sink {self.path} already closed")
        handle.write(
            _encode_line(
                {
                    "kind": kind,
                    "payload": payload if payload else {},
                    "seq": seq,
                    "source": source,
                    "time": time,
                }
            )
        )

    def bind_emitter(self, source: str):
        handle = self._handle
        if handle is None:
            raise TraceFormatError(f"trace sink {self.path} already closed")
        write = handle.write
        seq = 0

        def emit(kind: str, time: float, payload, _encode=_encode_line) -> None:
            nonlocal seq
            seq += 1
            write(
                _encode(
                    {
                        "kind": kind,
                        "payload": payload if payload else {},
                        "seq": seq,
                        "source": source,
                        "time": time,
                    }
                )
            )

        return emit

    def _write_line(self, record) -> None:
        if self._handle is None:
            raise TraceFormatError(f"trace sink {self.path} already closed")
        self._handle.write(_encode_line(record))

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __getstate__(self):
        raise TypeError(
            "JsonlSink holds an open file handle and cannot cross a process "
            "or checkpoint boundary; open the sink inside the worker instead"
        )


class SqliteSink(TraceSink):
    """SQLite sink with batched inserts (stdlib ``sqlite3``)."""

    _BATCH = 512

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        if os.path.exists(self.path):
            os.remove(self.path)
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(self.path)
        self._conn.executescript(
            """
            CREATE TABLE header (record TEXT NOT NULL);
            CREATE TABLE events (
                source  TEXT    NOT NULL,
                seq     INTEGER NOT NULL,
                time    REAL    NOT NULL,
                kind    TEXT    NOT NULL,
                payload TEXT    NOT NULL
            );
            """
        )
        self._pending: List[Tuple[str, int, float, str, str]] = []

    def write_header(self, header: TraceHeader) -> None:
        if self._conn is None:
            raise TraceFormatError(f"trace sink {self.path} already closed")
        self._conn.execute(
            "INSERT INTO header (record) VALUES (?)",
            (json.dumps(header.as_record(), sort_keys=True),),
        )

    def emit(self, event: TraceEvent) -> None:
        self.emit_record(*event)

    def emit_record(
        self, source: str, seq: int, time: float, kind: str, payload
    ) -> None:
        self._pending.append((source, seq, time, kind, _encode_json(payload)))
        if len(self._pending) >= self._BATCH:
            self._drain()

    def _drain(self) -> None:
        if self._conn is None:
            raise TraceFormatError(f"trace sink {self.path} already closed")
        if self._pending:
            self._conn.executemany(
                "INSERT INTO events (source, seq, time, kind, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                self._pending,
            )
            self._pending.clear()

    def flush(self) -> None:
        if self._conn is not None:
            self._drain()
            self._conn.commit()

    def close(self) -> None:
        if self._conn is not None:
            self._drain()
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def __getstate__(self):
        raise TypeError(
            "SqliteSink holds an open database connection and cannot cross a "
            "process or checkpoint boundary"
        )


class RingBufferSink(TraceSink):
    """Keep the last ``capacity`` events in memory (``None`` = unbounded)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 0:
            raise TraceFormatError("ring buffer capacity must be >= 0")
        self.capacity = capacity
        self.header: Optional[TraceHeader] = None
        self._events: Deque[TraceEvent] = collections.deque(maxlen=capacity)

    def write_header(self, header: TraceHeader) -> None:
        self.header = header

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()


# ---------------------------------------------------------------------------
# Readers
# ---------------------------------------------------------------------------


def _is_sqlite(path: str) -> bool:
    with open(path, "rb") as handle:
        return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC


def _iter_jsonl(path: str) -> Iterator[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_trace(path: str) -> Tuple[TraceHeader, List[TraceEvent]]:
    """Load a JSONL or SQLite trace back into (header, events).

    Events come back in file order for JSONL and in ``rowid`` (insertion)
    order for SQLite -- emission order either way.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise TraceFormatError(f"no such trace: {path}")
    if _is_sqlite(path):
        return _read_sqlite(path)
    return _read_jsonl(path)


def _read_jsonl(path: str) -> Tuple[TraceHeader, List[TraceEvent]]:
    header: Optional[TraceHeader] = None
    events: List[TraceEvent] = []
    for record in _iter_jsonl(path):
        if header is None:
            header = TraceHeader.from_record(record)
        else:
            events.append(TraceEvent.from_record(record))
    if header is None:
        raise TraceFormatError(f"trace {path} has no header line")
    return header, events


def _read_sqlite(path: str) -> Tuple[TraceHeader, List[TraceEvent]]:
    conn = sqlite3.connect(path)
    try:
        row = conn.execute("SELECT record FROM header").fetchone()
        if row is None:
            raise TraceFormatError(f"trace {path} has no header row")
        header = TraceHeader.from_record(json.loads(row[0]))
        events = [
            TraceEvent(
                source=source,
                seq=seq,
                time=time,
                kind=kind,
                payload=json.loads(payload),
            )
            for source, seq, time, kind, payload in conn.execute(
                "SELECT source, seq, time, kind, payload FROM events ORDER BY rowid"
            )
        ]
    finally:
        conn.close()
    return header, events


class TraceFollower:
    """Incrementally read a growing trace file (the dashboard's tail loop).

    ``poll()`` returns only the records appended since the previous call.
    JSONL traces are followed by byte offset (partial trailing lines are
    left for the next poll); SQLite traces by max ``rowid``.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self.header: Optional[TraceHeader] = None
        self._offset = 0  # jsonl byte offset
        self._rowid = 0  # sqlite high-water mark
        self._sqlite: Optional[bool] = None

    def poll(self) -> List[TraceEvent]:
        if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
            return []
        if self._sqlite is None:
            self._sqlite = _is_sqlite(self.path)
        return self._poll_sqlite() if self._sqlite else self._poll_jsonl()

    def _poll_jsonl(self) -> List[TraceEvent]:
        events: List[TraceEvent] = []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            while True:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    break  # incomplete trailing line: retry next poll
                self._offset = handle.tell()
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                record = json.loads(text)
                if self.header is None:
                    self.header = TraceHeader.from_record(record)
                else:
                    events.append(TraceEvent.from_record(record))
        return events

    def _poll_sqlite(self) -> List[TraceEvent]:
        events: List[TraceEvent] = []
        conn = sqlite3.connect(self.path)
        try:
            if self.header is None:
                row = conn.execute("SELECT record FROM header").fetchone()
                if row is not None:
                    self.header = TraceHeader.from_record(json.loads(row[0]))
            for rowid, source, seq, time, kind, payload in conn.execute(
                "SELECT rowid, source, seq, time, kind, payload FROM events "
                "WHERE rowid > ? ORDER BY rowid",
                (self._rowid,),
            ):
                self._rowid = rowid
                events.append(
                    TraceEvent(
                        source=source,
                        seq=seq,
                        time=time,
                        kind=kind,
                        payload=json.loads(payload),
                    )
                )
        except sqlite3.OperationalError:
            return []  # writer has not committed the schema yet
        finally:
            conn.close()
        return events


def open_sink(path: str, fmt: Optional[str] = None) -> TraceSink:
    """Open a file sink by explicit format or filename extension.

    ``fmt`` may be ``"jsonl"`` or ``"sqlite"``; when omitted, ``.db`` /
    ``.sqlite`` / ``.sqlite3`` extensions select SQLite and anything else
    selects JSONL.
    """
    if fmt is None:
        ext = os.path.splitext(path)[1].lower()
        fmt = "sqlite" if ext in (".db", ".sqlite", ".sqlite3") else "jsonl"
    if fmt == "jsonl":
        return JsonlSink(path)
    if fmt == "sqlite":
        return SqliteSink(path)
    raise TraceFormatError(f"unknown trace sink format {fmt!r}")
