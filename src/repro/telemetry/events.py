"""Versioned event schema for the streaming telemetry layer.

Every run -- simulator, deployment runtime, or federation -- can stream a
totally ordered sequence of typed :class:`TraceEvent` records to a sink (see
:mod:`repro.telemetry.sinks`).  The schema is deliberately small:

* ``source`` -- which loop emitted the event (``"sim"``, ``"runtime"``,
  ``"federation"``, ``"shard3"``, ...).  Parallel federation workers each
  write their own stream; sources are the merge unit.
* ``seq`` -- per-source monotonic sequence number, assigned by the
  :class:`~repro.telemetry.recorder.TraceRecorder` at emission time.  Within
  one source the sequence is gap-free and strictly increasing, which is what
  makes multi-stream merges deterministic: the global order is
  ``(time, source, seq)`` and ties cannot occur within a source.
* ``time`` -- simulated time (seconds).  Never wall-clock: traces must be
  bit-identical across replays, and wall-clock is not.
* ``kind`` -- the event type (one of the ``EVENT_*`` constants below).
* ``payload`` -- a JSON-safe dict of kind-specific fields.

Kinds whose payloads are inherently non-deterministic (wall-clock timing
breakdowns, supervisor restarts caused by injected kills) are listed in
:data:`NONDETERMINISTIC_KINDS`; ``python -m repro.trace diff`` excludes them
by default so replay parity is judged on the deterministic schedule stream.

The trace *header* carries the schema version, self-describing run metadata
(:func:`run_metadata`: seed, config hash, repro version, python version,
caller-supplied start time) and -- for recorded runs -- the replayable
:class:`~repro.telemetry.runspec.RunSpec` as a plain dict.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.core.exceptions import ConfigurationError

#: Bump on any incompatible change to the record layout below.
#: v2: added the ``cluster`` event kind (scenario timeline firings).  v1
#: traces remain readable -- the version gate only rejects *newer* files.
SCHEMA_VERSION = 2

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------

#: One per appended :class:`~repro.simulator.engine.RoundRecord` (full rounds,
#: light fast-forward rounds, steady strides and the drain chain all pass
#: through the same choke point, so traced round streams equal ``round_log``).
EVENT_ROUND = "round"
#: Job lifecycle transition, emitted from the ``JobStateObserver`` hooks.
EVENT_JOB = "job"
#: A non-trivial schedule/placement decision (new launches or suspensions;
#: pure lease renewals are not decisions).
EVENT_DECISION = "decision"
#: A running job evicted by a cluster membership change.
EVENT_EVICTION = "eviction"
#: A scenario-timeline cluster event fired (NodeFailure / ScaleOut / ...).
#: Payload: event kind, its scheduled time, the declarative event fields
#: (node ids, counts, gpu type) and the evicted job ids.  Fully
#: deterministic -- the timeline is compiled from the seed -- so replays
#: must reproduce these bit-identically and ``trace diff`` checks them.
EVENT_CLUSTER = "cluster"
#: Federation router sent a gang to a shard.
EVENT_ROUTE = "route"
#: Lease protocol transition (grant / revoke / complete).
EVENT_LEASE = "lease"
#: Periodic RPC-channel fault/retry counter snapshot (FaultStats).
EVENT_RPC_FAULTS = "rpc-faults"
#: Periodic federation state snapshot (per-shard queue depth / utilisation).
EVENT_FEDERATION = "federation"
#: Periodic wall-clock timing counters (FederationTiming) -- non-deterministic.
EVENT_TIMING = "timing"
#: Supervisor action on a parallel worker (restart / checkpoint / degrade).
EVENT_SUPERVISOR = "supervisor"

#: Kinds whose payloads may legitimately differ between a run and its replay
#: (wall-clock timings; supervisor actions triggered by injected faults).
#: ``trace diff`` skips these unless asked not to.
NONDETERMINISTIC_KINDS = frozenset({EVENT_TIMING, EVENT_SUPERVISOR})


class TraceFormatError(ConfigurationError):
    """A trace file or record does not match the schema."""


class TraceEvent(NamedTuple):
    """One typed telemetry event.  Immutable and JSON-round-trippable.

    A NamedTuple rather than a (frozen) dataclass: events are constructed on
    the engine's hot path -- once per round even through the fast-forward
    strides -- and tuple construction is several times cheaper than frozen
    dataclass ``__init__``, which matters for the bench's recording-overhead
    gate.
    """

    source: str
    seq: int
    time: float
    kind: str
    payload: Mapping[str, object] = {}

    def sort_key(self) -> Tuple[float, str, int]:
        """Deterministic global merge order across per-source streams."""
        return (self.time, self.source, self.seq)

    def as_record(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TraceEvent":
        try:
            return cls(
                source=record["source"],
                seq=int(record["seq"]),
                time=float(record["time"]),
                kind=record["kind"],
                payload=dict(record.get("payload") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace event record: {record!r}") from exc


@dataclass
class TraceHeader:
    """First record of every trace: schema version + run metadata (+ spec)."""

    schema_version: int = SCHEMA_VERSION
    metadata: Dict[str, object] = field(default_factory=dict)
    #: Replayable run description (``RunSpec.as_dict()``) when the trace was
    #: recorded through ``python -m repro.trace record`` / ``run_recorded``.
    spec: Optional[Dict[str, object]] = None

    def as_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "schema_version": self.schema_version,
            "metadata": dict(self.metadata),
        }
        if self.spec is not None:
            record["spec"] = dict(self.spec)
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TraceHeader":
        if "schema_version" not in record:
            raise TraceFormatError(
                f"trace header missing schema_version: {record!r}"
            )
        version = int(record["schema_version"])
        if version > SCHEMA_VERSION:
            raise TraceFormatError(
                f"trace schema v{version} is newer than supported v{SCHEMA_VERSION}"
            )
        spec = record.get("spec")
        return cls(
            schema_version=version,
            metadata=dict(record.get("metadata") or {}),
            spec=dict(spec) if spec is not None else None,
        )


# ---------------------------------------------------------------------------
# Run metadata
# ---------------------------------------------------------------------------


def config_hash(config: Mapping[str, object]) -> str:
    """Stable short hash of a JSON-safe config mapping (order-insensitive)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def run_metadata(
    seed: int,
    config: Mapping[str, object],
    started_at: Optional[float] = None,
) -> Dict[str, object]:
    """Self-describing metadata stamped into bench artifacts and trace headers.

    ``started_at`` is a wall-clock timestamp *passed in by the caller* (the
    CLI entry points pass ``time.time()``); library code never reads the
    clock itself so recorded payloads stay deterministic.
    """
    # Imported lazily: repro/__init__ imports the engine, which imports this
    # module -- a top-level "from repro import __version__" would be circular.
    from repro import __version__

    return {
        "seed": seed,
        "config_hash": config_hash(config),
        "repro_version": __version__,
        "python": platform.python_version(),
        "started_at": started_at,
    }


def merge_events(streams: List[List[TraceEvent]]) -> List[TraceEvent]:
    """Deterministically merge per-source streams by ``(time, source, seq)``.

    Each input stream must be sorted by its own ``sort_key`` (true for any
    single-source stream, since ``seq`` is monotonic and time never goes
    backwards within a source); the result is then independent of the input
    stream order and of the OS/process interleaving that produced the files.
    """
    import heapq

    return list(heapq.merge(*streams, key=TraceEvent.sort_key))
