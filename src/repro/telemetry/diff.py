"""Deterministic event-stream diffing: the engine behind ``trace diff``.

Streams are compared *per source*: each source's events form a totally
ordered sequence (monotonic ``seq``), so two runs agree exactly when every
source produced the identical sequence.  Comparing per source -- rather than
one globally merged list -- keeps the diff meaningful when two traces
interleave sources differently on disk (parallel workers flush
independently) while still being order-exact where order is defined.

Kinds in :data:`~repro.telemetry.events.NONDETERMINISTIC_KINDS` (wall-clock
timing snapshots, fault-driven supervisor actions) are excluded by default;
``seq`` gaps left by the exclusion are ignored, only the relative order and
content of the remaining events count.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.telemetry.events import NONDETERMINISTIC_KINDS, TraceEvent

#: Cap on reported divergences per diff (the first one is the debugging
#: entry point; thousands of follow-on mismatches are noise).
MAX_REPORTED = 10


def group_by_source(events: Sequence[TraceEvent]) -> Dict[str, List[TraceEvent]]:
    grouped: Dict[str, List[TraceEvent]] = {}
    for event in events:
        grouped.setdefault(event.source, []).append(event)
    return grouped


def _describe(event: TraceEvent) -> str:
    return (
        f"t={event.time:g} {event.kind} seq={event.seq} "
        f"payload={dict(event.payload)!r}"
    )


def diff_streams(
    events_a: Sequence[TraceEvent],
    events_b: Sequence[TraceEvent],
    ignore_kinds: FrozenSet[str] = NONDETERMINISTIC_KINDS,
) -> List[str]:
    """Human-readable divergences between two event streams ([] = identical).

    ``a`` is conventionally the recorded trace and ``b`` the replay.
    """
    divergences: List[str] = []
    filtered_a = group_by_source(
        [e for e in events_a if e.kind not in ignore_kinds]
    )
    filtered_b = group_by_source(
        [e for e in events_b if e.kind not in ignore_kinds]
    )
    for source in sorted(set(filtered_a) | set(filtered_b)):
        stream_a = filtered_a.get(source, [])
        stream_b = filtered_b.get(source, [])
        if source not in filtered_a:
            divergences.append(
                f"source {source!r}: only in b ({len(stream_b)} events)"
            )
            continue
        if source not in filtered_b:
            divergences.append(
                f"source {source!r}: only in a ({len(stream_a)} events)"
            )
            continue
        for index, (ev_a, ev_b) in enumerate(zip(stream_a, stream_b)):
            if (ev_a.time, ev_a.kind, dict(ev_a.payload)) != (
                ev_b.time,
                ev_b.kind,
                dict(ev_b.payload),
            ):
                divergences.append(
                    f"source {source!r} event #{index}: "
                    f"a[{_describe(ev_a)}] != b[{_describe(ev_b)}]"
                )
                if len(divergences) >= MAX_REPORTED:
                    divergences.append("... (further divergences suppressed)")
                    return divergences
        if len(stream_a) != len(stream_b):
            divergences.append(
                f"source {source!r}: a has {len(stream_a)} events, "
                f"b has {len(stream_b)}"
            )
        if len(divergences) >= MAX_REPORTED:
            divergences.append("... (further divergences suppressed)")
            return divergences
    return divergences
