"""Property-based differential fuzzing: event engine vs the round-loop oracle.

Each drawn spec is a random point in (workload x cluster shape x round
duration x policy x placement x churn) space; the property is always the
same: ``engine="events"`` must replay ``engine="rounds"`` bit-identically --
per-job completion times, the full round log, round count and end time --
and both engines must leave the shared state in the same condition as judged
by ``check_invariants()``.

Two tiers:

* the **fixed corpus** (always on) replays a handful of frozen seeds chosen
  to cover every drawn dimension at least once -- non-integral round
  durations, every policy and placement, churn on and off;
* the **wide sweep** (``pytest --fuzz``) draws a few dozen fresh specs; it
  is marked ``fuzz`` and skipped by default so tier-1 wall time stays flat.
"""

import random

import pytest

from repro.cluster.builder import build_cluster
from repro.core.abstractions import ClusterManager
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.placement.first_free import FirstFreePlacement
from repro.policies.scheduling import (
    FifoScheduling,
    LasScheduling,
    SrtfScheduling,
    TiresiasScheduling,
)
from repro.simulator.engine import Simulator
from repro.workloads.philly import generate_philly_trace

POLICIES = {
    "fifo": FifoScheduling,
    "srtf": SrtfScheduling,
    "las": LasScheduling,
    "tiresias": TiresiasScheduling,
}
PLACEMENTS = {
    "consolidated": ConsolidatedPlacement,
    "first-free": FirstFreePlacement,
}
#: Round durations the generator draws from; the non-integral entries force
#: the event core off its closed-form clock arithmetic and onto the mirrored
#: float-accumulation path, which is where rounding divergence would hide.
ROUND_DURATIONS = (60.0, 150.0, 300.0, 287.5, 299.25)

#: Frozen corpus seeds (always run).  Together the specs they draw cover all
#: four policies, both placements, integral and non-integral round durations,
#: and churn both on and off -- re-derive with ``_draw_spec`` if the
#: generator changes.
FIXED_CORPUS_SEEDS = (11, 67, 99, 104, 108, 125, 131, 195)

#: Wide-sweep seeds (``--fuzz`` only).
FUZZ_SWEEP_SEEDS = tuple(range(1000, 1040))


class ScriptedChurn(ClusterManager):
    """Deterministic fail/recover script with a predictable event horizon."""

    name = "scripted-churn"

    def __init__(self, script):
        #: ``script`` is a list of ``(time, action, node_id)`` tuples with
        #: action in {"fail", "recover"}; sorted so ``next_event_time`` can
        #: report the earliest unapplied entry.
        self.script = sorted(script)
        self.index = 0

    def update(self, cluster_state, current_time):
        affected = []
        while self.index < len(self.script) and self.script[self.index][0] <= current_time:
            _, action, node_id = self.script[self.index]
            self.index += 1
            if action == "fail":
                affected.extend(cluster_state.mark_node_failed(node_id))
            else:
                cluster_state.mark_node_recovered(node_id)
        return affected

    def next_event_time(self, current_time):
        if self.index >= len(self.script):
            return None
        return self.script[self.index][0]


def _draw_spec(seed):
    rng = random.Random(seed)
    # Cluster shapes stay comfortably above the largest Philly gang (8 GPUs):
    # an infeasible draw would starve under FIFO on *both* engines, which
    # times out the run instead of testing parity.
    nodes = rng.randint(4, 8)
    round_duration = rng.choice(ROUND_DURATIONS)
    spec = {
        "seed": seed,
        "nodes": nodes,
        "gpus_per_node": rng.choice((4, 8)),
        "jobs": rng.randint(8, 32),
        "jobs_per_hour": rng.choice((1.0, 3.0, 6.0, 10.0)),
        "round_duration": round_duration,
        "policy": rng.choice(sorted(POLICIES)),
        "placement": rng.choice(sorted(PLACEMENTS)),
        "churn": None,
    }
    if rng.random() < 0.5:
        # One fail/recover pair per churn run, landing on round boundaries
        # a few dozen rounds in, so failures hit live allocations.
        node_id = rng.randrange(nodes)
        fail_round = rng.randint(5, 40)
        recover_round = fail_round + rng.randint(3, 30)
        spec["churn"] = (
            (fail_round * round_duration, "fail", node_id),
            (recover_round * round_duration, "recover", node_id),
        )
    return spec


def _run_engine(spec, engine):
    trace = generate_philly_trace(
        num_jobs=spec["jobs"], jobs_per_hour=spec["jobs_per_hour"], seed=spec["seed"]
    )
    manager = ScriptedChurn(list(spec["churn"])) if spec["churn"] else None
    simulator = Simulator(
        cluster_state=build_cluster(
            num_nodes=spec["nodes"], gpus_per_node=spec["gpus_per_node"]
        ),
        jobs=trace.fresh_jobs(),
        scheduling_policy=POLICIES[spec["policy"]](),
        placement_policy=PLACEMENTS[spec["placement"]](),
        round_duration=spec["round_duration"],
        cluster_manager=manager,
        engine=engine,
    )
    result = simulator.run()
    return simulator, result


def _invariant_outcome(simulator):
    """The state-invariant verdict after a run: None, or the failure text."""
    try:
        simulator.cluster_state.check_invariants()
        simulator.job_state.check_invariants()
    except Exception as exc:  # noqa: BLE001 - the outcome itself is the datum
        return f"{type(exc).__name__}: {exc}"
    return None


def _assert_parity(spec):
    rounds_sim, rounds_result = _run_engine(spec, "rounds")
    events_sim, events_result = _run_engine(spec, "events")

    rounds_completions = {j.job_id: j.completion_time for j in rounds_result.jobs}
    events_completions = {j.job_id: j.completion_time for j in events_result.jobs}
    assert rounds_completions == events_completions, spec
    assert rounds_result.round_log == events_result.round_log, spec
    assert rounds_result.rounds == events_result.rounds, spec
    assert rounds_result.end_time == events_result.end_time, spec
    assert _invariant_outcome(rounds_sim) == _invariant_outcome(events_sim), spec


def test_corpus_covers_every_drawn_dimension():
    """The frozen corpus must keep covering all policies/placements/etc."""
    specs = [_draw_spec(seed) for seed in FIXED_CORPUS_SEEDS]
    assert {s["policy"] for s in specs} == set(POLICIES)
    assert {s["placement"] for s in specs} == set(PLACEMENTS)
    assert any(not float(s["round_duration"]).is_integer() for s in specs)
    assert any(float(s["round_duration"]).is_integer() for s in specs)
    assert any(s["churn"] for s in specs)
    assert any(not s["churn"] for s in specs)


@pytest.mark.parametrize("seed", FIXED_CORPUS_SEEDS)
def test_event_engine_parity_fixed_corpus(seed):
    _assert_parity(_draw_spec(seed))


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", FUZZ_SWEEP_SEEDS)
def test_event_engine_parity_fuzz_sweep(seed):
    _assert_parity(_draw_spec(seed))
