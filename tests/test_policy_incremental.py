"""Schedule-parity and unit tests for the incremental policy layer.

The incremental implementations (heap-based Pollux, priority-index ordering
for FIFO/SRTF/LAS/Tiresias/Gavel, observer-maintained wait clocks) must make
bit-identical decisions to the pre-refactor implementations kept in
``repro.bench.legacy`` -- and the event-aware fast-forward the new policies
opt into must be invisible in the results.  Parity runs use a 256-GPU
Philly-style workload (the benchmark cluster shape) so both the contended and
the drain regimes are exercised.
"""

import pytest

from repro.bench.legacy import (
    LegacyFifoScheduling,
    LegacyGavelScheduling,
    LegacyLasScheduling,
    LegacyPolicySimulator,
    LegacyPolluxScheduling,
    LegacySrtfScheduling,
    LegacyTiresiasScheduling,
)
from repro.cluster.builder import build_cluster
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState, JobStateObserver
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling import (
    FifoScheduling,
    GavelScheduling,
    LasScheduling,
    PolluxScheduling,
    SrtfScheduling,
    TiresiasScheduling,
)
from repro.policies.scheduling.priority_index import RunnablePriorityIndex
from repro.simulator.engine import Simulator
from repro.workloads.philly import generate_philly_trace


def build_256gpu_cluster():
    return build_cluster(num_nodes=64, gpus_per_node=4, gpu_type="v100")


@pytest.fixture(scope="module")
def trace():
    """A 256-GPU-scale Philly workload covering contention and drain."""
    return generate_philly_trace(num_jobs=120, jobs_per_hour=10.0, seed=2024)


def run(trace, scheduling_policy, simulator_cls=Simulator, **kwargs):
    sim = simulator_cls(
        cluster_state=build_256gpu_cluster(),
        jobs=trace.fresh_jobs(),
        scheduling_policy=scheduling_policy,
        placement_policy=ConsolidatedPlacement(),
        **kwargs,
    )
    return sim.run()


def assert_identical(first, second):
    assert first.rounds == second.rounds
    first_completions = {j.job_id: j.completion_time for j in first.jobs}
    second_completions = {j.job_id: j.completion_time for j in second.jobs}
    assert first_completions == second_completions
    assert first.round_log == second.round_log
    assert first.end_time == second.end_time


# ----------------------------------------------------------------------
# Old-vs-new schedule parity (pre-refactor policy + engine cost model vs.
# incremental policy + event-aware engine)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "new_factory,old_factory",
    [
        (PolluxScheduling, LegacyPolluxScheduling),
        (TiresiasScheduling, LegacyTiresiasScheduling),
        (GavelScheduling, LegacyGavelScheduling),
        (SrtfScheduling, LegacySrtfScheduling),
        (LasScheduling, LegacyLasScheduling),
        (FifoScheduling, LegacyFifoScheduling),
    ],
    ids=["pollux", "tiresias", "gavel", "srtf", "las", "fifo"],
)
def test_incremental_policy_matches_legacy(trace, new_factory, old_factory):
    new = run(trace, new_factory())
    old = run(trace, old_factory(), simulator_cls=LegacyPolicySimulator)
    assert_identical(old, new)
    assert len(new.finished_jobs()) == 120


def test_tiresias_starvation_promotion_matches_legacy(trace):
    kwargs = dict(queue_thresholds=(900.0, 3600.0), starvation_promote_after=1800.0)
    new = run(trace, TiresiasScheduling(**kwargs))
    old = run(trace, LegacyTiresiasScheduling(**kwargs), simulator_cls=LegacyPolicySimulator)
    assert_identical(old, new)


# ----------------------------------------------------------------------
# Fast-forward on/off parity for the newly opted-in elastic policies
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        PolluxScheduling,
        TiresiasScheduling,
        GavelScheduling,
        FifoScheduling,
        lambda: TiresiasScheduling(
            queue_thresholds=(900.0, 3600.0), starvation_promote_after=1800.0
        ),
    ],
    ids=["pollux", "tiresias", "gavel", "fifo", "tiresias-starve"],
)
def test_fast_forward_parity_for_event_aware_policies(trace, factory):
    with_skip = run(trace, factory(), fast_forward=True)
    without_skip = run(trace, factory(), fast_forward=False)
    assert_identical(without_skip, with_skip)


def test_fast_forward_parity_with_cluster_failure_under_tiresias(trace):
    """Event-aware skipping must stop exactly at scheduled cluster events."""
    from repro.core.abstractions import ClusterManager

    class OneFailure(ClusterManager):
        def __init__(self):
            self.failed = False
            self.recovered = False

        def update(self, cluster_state, current_time):
            if not self.failed and current_time >= 30_000:
                self.failed = True
                return cluster_state.mark_node_failed(3)
            if not self.recovered and current_time >= 120_000:
                self.recovered = True
                cluster_state.mark_node_recovered(3)
            return []

        def next_event_time(self, current_time):
            if not self.failed:
                return 30_000.0
            if not self.recovered:
                return 120_000.0
            return None

    policy = TiresiasScheduling(
        queue_thresholds=(1800.0,), starvation_promote_after=7200.0
    )
    with_skip = run(trace, policy, cluster_manager=OneFailure(), fast_forward=True)
    policy = TiresiasScheduling(
        queue_thresholds=(1800.0,), starvation_promote_after=7200.0
    )
    without_skip = run(trace, policy, cluster_manager=OneFailure(), fast_forward=False)
    assert_identical(without_skip, with_skip)


def test_fast_forward_parity_with_collectors_under_pollux(trace):
    """Collectors force the classic per-round loop; results must not change."""
    from repro.metrics.collector import UtilizationCollector

    a_coll, b_coll = UtilizationCollector(), UtilizationCollector()
    with_skip = run(trace, PolluxScheduling(), fast_forward=True, metric_collectors=[a_coll])
    without_skip = run(trace, PolluxScheduling(), fast_forward=False, metric_collectors=[b_coll])
    assert_identical(without_skip, with_skip)
    assert a_coll.timestamps == b_coll.timestamps
    assert a_coll.utilization == b_coll.utilization


# ----------------------------------------------------------------------
# Priority index and observer unit tests
# ----------------------------------------------------------------------


def make_job(arrival=0.0, gpus=1, duration=1000.0, **kwargs):
    return Job(arrival_time=arrival, num_gpus=gpus, duration=duration, **kwargs)


def las_key(job):
    return (job.attained_service, job.arrival_time, job.job_id)


def test_priority_index_tracks_status_transitions():
    job_state = JobState()
    index = RunnablePriorityIndex(idle_key=las_key)
    index.bind(job_state)
    jobs = [make_job(arrival=i) for i in range(5)]
    job_state.add_new_jobs(jobs)
    index.check_invariants()
    assert [j.job_id for j in index.ordered(las_key)] == [j.job_id for j in jobs]

    jobs[2].status = JobStatus.RUNNING
    jobs[0].status = JobStatus.RUNNING
    index.check_invariants()
    assert {j.job_id for j in index.running_jobs()} == {jobs[0].job_id, jobs[2].job_id}

    jobs[2].attained_service = 50.0
    jobs[2].status = JobStatus.PREEMPTED
    index.check_invariants()
    # Preempted job re-enters the idle tier keyed by its frozen service.
    assert index.idle_key_of(jobs[2].job_id)[0] == 50.0

    jobs[0].status = JobStatus.COMPLETED
    index.check_invariants()
    assert len(index) == 4
    # Full ordering equals a fresh sort.
    expected = sorted(job_state.runnable_jobs(), key=las_key)
    assert index.ordered(las_key) == expected


def test_priority_index_rebinds_and_rebuilds():
    first, second = JobState(), JobState()
    first.add_new_jobs([make_job(arrival=0.0)])
    second.add_new_jobs([make_job(arrival=1.0), make_job(arrival=2.0)])
    rebuilds = []
    index = RunnablePriorityIndex(idle_key=las_key, on_rebuild=lambda: rebuilds.append(1))
    index.bind(first)
    assert len(index) == 1
    index.bind(second)
    assert len(index) == 2
    index.check_invariants()
    assert len(rebuilds) == 2
    # The old registry no longer notifies the index.
    first.add_new_jobs([make_job(arrival=3.0)])
    assert len(index) == 2


def test_observer_hooks_fire_in_order():
    events = []

    class Recorder(JobStateObserver):
        def on_job_tracked(self, job):
            events.append(("tracked", job.job_id))

        def on_status_change(self, job, old, new):
            events.append(("status", job.job_id, old, new))

        def on_progress(self, job, field, old, new):
            events.append(("progress", job.job_id, field, new))

    job_state = JobState()
    recorder = Recorder()  # observers are held weakly: keep a strong ref
    job_state.add_observer(recorder)
    job = make_job()
    job_state.track(job)
    job.status = JobStatus.RUNNABLE
    job.status = JobStatus.RUNNING
    job.attained_service = 10.0
    job.work_done = 5.0
    assert events == [
        ("tracked", job.job_id),
        ("status", job.job_id, JobStatus.SUBMITTED, JobStatus.RUNNABLE),
        ("status", job.job_id, JobStatus.RUNNABLE, JobStatus.RUNNING),
        ("progress", job.job_id, "attained_service", 10.0),
        ("progress", job.job_id, "work_done", 5.0),
    ]


def test_progress_dispatch_skipped_for_status_only_observers():
    """Observers that don't override on_progress stay off the hot write path."""
    job_state = JobState()
    observer = JobStateObserver()
    job_state.add_observer(observer)
    assert job_state._progress_observers == []
    job = make_job()
    job_state.track(job)
    job.attained_service = 3.0  # must not raise nor dispatch


def test_pollux_goodput_memoization_and_invalidation():
    policy = PolluxScheduling()
    job = make_job(gpus=2)
    first = policy.marginal_goodput(job, 1)
    legacy = LegacyPolluxScheduling()
    assert first == legacy.marginal_goodput(job, 1)
    assert job.job_id in policy._curves
    # Profile change: stale until invalidated, fresh afterwards.
    job.max_batch_scale = 1
    assert policy.marginal_goodput(job, 1) == first
    policy.invalidate_profile(job.job_id)
    assert policy.marginal_goodput(job, 1) == legacy.marginal_goodput(job, 1)


def test_gavel_entries_carry_preferred_type_without_metric_writes():
    job_state = JobState()
    cluster = build_cluster(num_nodes=2, gpus_per_node=2, gpu_type="v100")
    job = make_job(gpus=1)
    job_state.add_new_jobs([job])
    entries = GavelScheduling().schedule(job_state, cluster)
    assert entries[0].gpu_type == "v100"
    assert "preferred_gpu_type" not in job.metrics


def test_tiresias_rejects_bad_configuration():
    from repro.core.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        TiresiasScheduling(queue_thresholds=(100.0, 50.0))
    with pytest.raises(ConfigurationError):
        TiresiasScheduling(starvation_promote_after=0.0)


def test_schedule_is_pure_under_repeated_calls(trace):
    """Calling schedule() twice in a row must return the same list (no
    comparator side effects)."""
    job_state = JobState()
    cluster = build_256gpu_cluster()
    job_state.add_new_jobs([make_job(arrival=i, gpus=2) for i in range(6)])
    job_state.current_time = 500.0
    policy = TiresiasScheduling(queue_thresholds=(900.0,), starvation_promote_after=1800.0)
    first = policy.schedule(job_state, cluster)
    second = policy.schedule(job_state, cluster)
    assert first == second
