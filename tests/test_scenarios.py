"""Scenario-engine tests: determinism, event semantics, fast-forward safety.

The contract under test: compiling a :class:`ScenarioSpec` with a seed is a
pure function (bit-identical event streams and traces), applying the events
keeps the cluster indexes consistent, and running any scenario with
fast-forward on vs. off produces bit-identical schedules -- churn events
bound the skip horizon instead of disabling skipping.
"""

import pytest

from repro.cluster.builder import ClusterSpec, build_cluster
from repro.core.exceptions import ConfigurationError
from repro.experiments.harness import PolicySpec, run_policy
from repro.metrics.summary import capacity_weighted_utilization, scenario_summary
from repro.policies.scheduling import FifoScheduling, SrtfScheduling, TiresiasScheduling
from repro.scenarios import (
    GpuUpgradeEvent,
    NodeFailureEvent,
    NodeRecoveryEvent,
    ScaleInEvent,
    ScaleOutEvent,
    ScenarioSpec,
    TimelineClusterManager,
    WorkloadSpec,
    get_scenario,
    scenario_names,
)
from repro.scenarios.runner import run_scenario_matrix


# ----------------------------------------------------------------------
# Compilation determinism
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_compile_is_deterministic(name):
    spec = get_scenario(name, smoke=True)
    first = spec.compile(42)
    second = spec.compile(42)
    assert first.events == second.events
    assert [(j.job_id, j.arrival_time, j.num_gpus, j.duration) for j in first.trace.jobs] == [
        (j.job_id, j.arrival_time, j.num_gpus, j.duration) for j in second.trace.jobs
    ]


def test_events_are_sorted_by_time():
    for name in scenario_names():
        events = get_scenario(name, smoke=True).compile(3).events
        times = [e.time for e in events]
        assert times == sorted(times), name


def test_unknown_scenario_raises():
    with pytest.raises(ConfigurationError):
        get_scenario("no-such-scenario")


# ----------------------------------------------------------------------
# Event semantics
# ----------------------------------------------------------------------


def test_scale_out_adds_typed_nodes():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    ScaleOutEvent(time=0.0, num_nodes=2, gpus_per_node=8, gpu_type="a100").apply(cluster)
    assert cluster.num_nodes == 4
    assert cluster.total_gpus == 8 + 16
    added = cluster.node(3)
    assert added.gpu_type.name == "a100"
    assert added.num_gpus == 8
    cluster.check_invariants()


def test_scale_in_removes_newest_and_evicts():
    cluster = build_cluster(num_nodes=4, gpus_per_node=4)
    gpus = [g.gpu_id for g in cluster.gpus_on_node(3)]
    cluster.assign(7, gpus[:2])
    evicted = ScaleInEvent(time=0.0, num_nodes=2).apply(cluster)
    assert evicted == [7]
    assert sorted(cluster.nodes) == [0, 1]
    cluster.check_invariants()


def test_scale_in_never_empties_the_cluster():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    ScaleInEvent(time=0.0, num_nodes=5).apply(cluster)
    assert cluster.num_nodes == 1
    cluster.check_invariants()


def test_gpu_upgrade_replaces_type_in_place():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    gpus = [g.gpu_id for g in cluster.gpus_on_node(1)]
    cluster.assign(5, gpus)
    evicted = GpuUpgradeEvent(time=0.0, node_ids=(1,), gpu_type="a100").apply(cluster)
    assert evicted == [5]
    assert sorted(cluster.nodes) == [0, 1]
    assert cluster.node(1).gpu_type.name == "a100"
    assert cluster.node(0).gpu_type.name == "v100"
    assert cluster.num_free_gpus("a100") == 4
    cluster.check_invariants()


def test_failure_and_recovery_are_graceful():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    affected = NodeFailureEvent(time=0.0, node_ids=(0, 99)).apply(cluster)
    assert affected == []
    assert cluster.nodes[0].failed
    # Failing an already-failed node and recovering an unknown one are no-ops.
    NodeFailureEvent(time=1.0, node_ids=(0,)).apply(cluster)
    NodeRecoveryEvent(time=2.0, node_ids=(99,)).apply(cluster)
    NodeRecoveryEvent(time=3.0, node_ids=(0,)).apply(cluster)
    assert not cluster.nodes[0].failed
    cluster.check_invariants()


# ----------------------------------------------------------------------
# Timeline cluster manager
# ----------------------------------------------------------------------


def test_timeline_manager_applies_due_events_and_bounds_skipping():
    cluster = build_cluster(num_nodes=3, gpus_per_node=4)
    manager = TimelineClusterManager(
        [
            NodeFailureEvent(time=600.0, node_ids=(1,)),
            NodeRecoveryEvent(time=1200.0, node_ids=(1,)),
        ]
    )
    assert manager.update(cluster, 0.0) == []
    assert manager.next_event_time(0.0) == 600.0
    assert manager.update(cluster, 300.0) == []
    manager.update(cluster, 600.0)
    assert cluster.nodes[1].failed
    assert manager.next_event_time(600.0) == 1200.0
    manager.update(cluster, 1500.0)  # late call still applies the due event
    assert not cluster.nodes[1].failed
    assert manager.next_event_time(1500.0) is None
    assert manager.events_applied == 2
    assert manager.pending_events == 0


def test_timeline_manager_keeps_fast_forward_enabled():
    from repro.simulator.engine import Simulator
    from repro.workloads.philly import generate_philly_trace

    trace = generate_philly_trace(num_jobs=5, jobs_per_hour=6.0, seed=1)
    sim = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        cluster_manager=TimelineClusterManager([NodeFailureEvent(time=600.0, node_ids=(0,))]),
        fast_forward=True,
    )
    assert sim.fast_forward is True


# ----------------------------------------------------------------------
# Fast-forward safety under churn
# ----------------------------------------------------------------------


def _run_scenario(compiled, scheduling_factory, fast_forward):
    spec = PolicySpec(label="t", scheduling=scheduling_factory)
    return run_policy(
        compiled.trace,
        spec,
        num_nodes=compiled.spec.cluster.num_nodes,
        cluster=compiled.build_cluster(),
        cluster_manager=compiled.make_cluster_manager(),
        round_duration=compiled.spec.round_duration,
        fast_forward=fast_forward,
    )


def assert_identical(first, second):
    assert first.rounds == second.rounds
    assert {j.job_id: j.completion_time for j in first.jobs} == {
        j.job_id: j.completion_time for j in second.jobs
    }
    assert first.round_log == second.round_log
    assert first.eviction_count == second.eviction_count


@pytest.mark.parametrize(
    "scenario_name,scheduling_factory",
    [
        ("failure-storm", FifoScheduling),
        ("failure-storm", TiresiasScheduling),
        ("scale-cycle", FifoScheduling),
        ("scale-cycle", SrtfScheduling),
        ("bernoulli-churn", TiresiasScheduling),
        ("rolling-upgrade", FifoScheduling),
    ],
)
def test_fast_forward_parity_under_churn(scenario_name, scheduling_factory):
    """Same spec + seed => bit-identical schedules with fast-forward on vs. off."""
    compiled = get_scenario(scenario_name, smoke=True).compile(11)
    assert compiled.events, "churn scenario must compile to a non-empty timeline"
    with_skip = _run_scenario(compiled, scheduling_factory, fast_forward=True)
    without_skip = _run_scenario(compiled, scheduling_factory, fast_forward=False)
    assert_identical(without_skip, with_skip)


def test_churn_actually_evicts_jobs():
    compiled = get_scenario("spot-market", smoke=True).compile(11)
    result = _run_scenario(compiled, FifoScheduling, fast_forward=True)
    assert result.eviction_count > 0
    summary = scenario_summary(
        result.jobs, result.tracked_job_ids, result.round_log, result.eviction_count
    )
    assert summary.eviction_count == result.eviction_count
    assert summary.preemption_count >= summary.eviction_count
    assert 0.0 < summary.capacity_weighted_utilization <= 1.0


# ----------------------------------------------------------------------
# Capacity-weighted utilisation
# ----------------------------------------------------------------------


def test_capacity_counters_weight_by_compute_factor():
    cluster = build_cluster(num_nodes=1, gpus_per_node=4, gpu_type="v100")
    ScaleOutEvent(time=0.0, num_nodes=1, gpus_per_node=4, gpu_type="a100").apply(cluster)
    assert cluster.healthy_capacity() == pytest.approx(4 * 1.0 + 4 * 2.2)
    a100_gpus = [g.gpu_id for g in cluster.gpus_on_node(1)]
    cluster.assign(1, a100_gpus)
    assert cluster.busy_capacity() == pytest.approx(4 * 2.2)
    assert cluster.capacity_utilization() == pytest.approx((4 * 2.2) / (4 + 4 * 2.2))
    # Failing the idle V100 node removes its capacity from the denominator.
    cluster.mark_node_failed(0)
    assert cluster.capacity_utilization() == pytest.approx(1.0)
    cluster.check_invariants()


def test_capacity_weighted_utilization_over_round_log():
    class Record:
        def __init__(self, busy, healthy):
            self.busy_capacity = busy
            self.healthy_capacity = healthy

    log = [Record(2.0, 4.0), Record(0.0, 0.0), Record(4.0, 4.0)]
    assert capacity_weighted_utilization(log) == pytest.approx(6.0 / 8.0)
    assert capacity_weighted_utilization([]) == 0.0


# ----------------------------------------------------------------------
# Matrix runner
# ----------------------------------------------------------------------


def test_scenario_matrix_runner_smoke():
    report = run_scenario_matrix(
        smoke=True,
        scenarios=["failure-storm"],
        combos=[("fifo", "consolidated")],
        processes=1,
    )
    assert report["all_schedule_parity"] is True
    cell = report["cells"]["failure-storm/fifo/consolidated"]
    assert cell["schedule_parity"] is True
    assert cell["cluster_events"] > 0
    summary = cell["summary"]
    for key in (
        "avg_jct",
        "p99_jct",
        "preemption_count",
        "eviction_count",
        "capacity_weighted_utilization",
    ):
        assert key in summary


def test_load_spike_preserves_tracked_window_by_id():
    """Spike jobs interleave with the original arrivals; the tracked window
    must keep reporting the *original* jobs, not whatever lands on those
    indices after the re-sort."""
    from repro.workloads.bursty import add_spike
    from repro.workloads.philly import generate_philly_trace

    base = generate_philly_trace(
        num_jobs=20, jobs_per_hour=6.0, seed=2, tracked_window=(5, 15)
    )
    tracked_before = base.tracked_ids()
    spiked = add_spike(base, start_time=0.0, num_jobs=10, seed=3)
    assert spiked.tracked_ids() == tracked_before
    # An untracked base trace tracks everything, spikes included.
    base_all = generate_philly_trace(num_jobs=10, jobs_per_hour=6.0, seed=2)
    spiked_all = add_spike(base_all, start_time=0.0, num_jobs=5, seed=3)
    assert len(spiked_all.tracked_ids()) == 15


def test_spot_wave_rejects_overlapping_waves():
    from repro.scenarios import SpotWave
    from repro.scenarios.spec import CompileContext
    import random

    wave = SpotWave(at=0.0, fraction=0.5, outage=7200.0, period=3600.0, repeat=3)
    with pytest.raises(ConfigurationError):
        wave.compile_events(random.Random(0), CompileContext(node_ids=(0, 1, 2, 3), round_duration=300.0))


def test_zero_target_entries_compile_to_no_events():
    from repro.scenarios import FailNodes
    from repro.scenarios.spec import CompileContext
    import random

    ctx = CompileContext(node_ids=tuple(range(6)), round_duration=300.0)
    entry = FailNodes(at=3600.0, fraction=0.05, recover_after=7200.0)
    assert entry.compile_events(random.Random(0), ctx) == []


def test_scenario_spec_validation():
    with pytest.raises(ConfigurationError):
        WorkloadSpec(generator="nope")
    with pytest.raises(ConfigurationError):
        ScenarioSpec(name="", cluster=ClusterSpec(num_nodes=2))
    with pytest.raises(ConfigurationError):
        ScaleInEvent(time=0.0)  # needs node_ids xor num_nodes
    with pytest.raises(ConfigurationError):
        NodeFailureEvent(time=-1.0, node_ids=(0,))
