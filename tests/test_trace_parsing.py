"""Trace-parser hardening: malformed rows fail loudly with row context."""

import pytest

from repro.core.exceptions import ConfigurationError, TraceFormatError
from repro.workloads.parsers import load_trace_csv, save_trace_csv
from repro.workloads.philly import generate_philly_trace

HEADER = "job_id,arrival_time,num_gpus,duration,model_name\n"


def _write(tmp_path, body, name="trace.csv"):
    path = tmp_path / name
    path.write_text(HEADER + body)
    return path


def test_round_trip(tmp_path):
    trace = generate_philly_trace(num_jobs=10, jobs_per_hour=6.0, seed=4)
    path = save_trace_csv(trace, tmp_path / "out.csv")
    loaded = load_trace_csv(path)
    assert len(loaded) == 10
    assert [j.job_id for j in loaded.jobs] == [j.job_id for j in trace.jobs]


def test_trace_format_error_is_a_configuration_error():
    assert issubclass(TraceFormatError, ConfigurationError)
    assert issubclass(TraceFormatError, ValueError)


@pytest.mark.parametrize(
    "row,fragment",
    [
        ("x,0.0,1,100.0,generic", "job_id"),
        ("1,not-a-time,1,100.0,generic", "arrival_time"),
        ("1,0.0,zero,100.0,generic", "num_gpus"),
        ("1,0.0,1,nan,generic", "duration"),
        ("1,0.0,1,inf,generic", "duration"),
        ("1,-5.0,1,100.0,generic", "arrival_time"),
        ("1,0.0,0,100.0,generic", "num_gpus"),
        ("1,0.0,-2,100.0,generic", "num_gpus"),
        ("1,0.0,1,0.0,generic", "duration"),
        ("1,0.0,1,-3.0,generic", "duration"),
    ],
)
def test_malformed_rows_raise_with_row_context(tmp_path, row, fragment):
    path = _write(tmp_path, "0,0.0,1,50.0,generic\n" + row + "\n")
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace_csv(path)
    message = str(excinfo.value)
    assert ":3:" in message  # header is line 1, good row line 2, bad row line 3
    assert fragment in message


def test_short_row_raises_with_row_context(tmp_path):
    path = _write(tmp_path, "0,0.0\n")
    with pytest.raises(TraceFormatError) as excinfo:
        load_trace_csv(path)
    assert ":2:" in str(excinfo.value)


def test_missing_columns_rejected(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("job_id,arrival_time\n1,0.0\n")
    with pytest.raises(TraceFormatError):
        load_trace_csv(path)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(TraceFormatError):
        load_trace_csv(tmp_path / "absent.csv")


def test_empty_trace_rejected(tmp_path):
    path = _write(tmp_path, "")
    with pytest.raises(TraceFormatError):
        load_trace_csv(path)
