"""Status-transition tests for the indexed ``JobState``."""

import pickle

from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState


def make_job(job_id, arrival=0.0, gpus=1, duration=100.0):
    return Job(arrival_time=arrival, num_gpus=gpus, duration=duration, job_id=job_id)


def test_add_new_jobs_marks_runnable_and_indexes():
    state = JobState()
    jobs = [make_job(1), make_job(2)]
    added = state.add_new_jobs(jobs, current_time=5.0)
    assert added == jobs
    assert all(j.status is JobStatus.RUNNABLE for j in jobs)
    assert all(j.admitted_time == 5.0 for j in jobs)
    assert state.runnable_jobs() == jobs
    assert state.count_active() == 2
    state.check_invariants()


def test_set_status_moves_between_views():
    state = JobState()
    state.add_new_jobs([make_job(1), make_job(2), make_job(3)])
    state.set_status(1, JobStatus.RUNNING)
    state.set_status(2, JobStatus.COMPLETED)
    state.check_invariants()
    assert [j.job_id for j in state.running_jobs()] == [1]
    assert [j.job_id for j in state.finished_jobs()] == [2]
    assert [j.job_id for j in state.jobs_with_status(JobStatus.RUNNABLE)] == [3]
    assert [j.job_id for j in state.active_jobs()] == [1, 3]
    assert state.count_with_status(JobStatus.RUNNING, JobStatus.RUNNABLE) == 2
    assert state.count_finished() == 1


def test_direct_status_writes_also_reindex():
    """Mechanisms assign ``job.status`` directly; the descriptor must notify."""
    state = JobState()
    state.add_new_jobs([make_job(1)])
    job = state.get(1)
    job.status = JobStatus.RUNNING
    assert [j.job_id for j in state.running_jobs()] == [1]
    job.status = JobStatus.PREEMPTED
    assert state.running_jobs() == []
    assert [j.job_id for j in state.runnable_jobs()] == [1]
    job.status = JobStatus.COMPLETED
    assert state.count_active() == 0
    assert [j.job_id for j in state.finished_jobs()] == [1]
    state.check_invariants()


def test_track_keeps_status_and_handles_replacement():
    state = JobState()
    job = make_job(9)
    job.status = JobStatus.WAITING_ADMISSION
    state.track(job)
    assert [j.job_id for j in state.waiting_admission_jobs()] == [9]
    # Tracking a different object under the same id replaces the old one.
    replacement = make_job(9)
    replacement.status = JobStatus.RUNNABLE
    state.track(replacement)
    state.check_invariants()
    assert state.get(9) is replacement
    assert state.waiting_admission_jobs() == []
    # The detached job no longer notifies this registry.
    job.status = JobStatus.RUNNING
    assert state.running_jobs() == []
    state.check_invariants()


def test_tracking_a_foreign_owned_job_is_rejected():
    import pytest

    first = JobState()
    second = JobState()
    job = make_job(1)
    first.track(job)
    with pytest.raises(ValueError, match="already tracked by another JobState"):
        second.track(job)
    # The original registry stays authoritative and consistent.
    job.status = JobStatus.RUNNING
    assert [j.job_id for j in first.running_jobs()] == [1]
    assert second.running_jobs() == []
    first.check_invariants()
    second.check_invariants()
    # Re-tracking in the same registry is fine.
    first.track(job)
    first.check_invariants()


def test_untracked_job_status_writes_are_safe():
    job = make_job(1)
    job.status = JobStatus.RUNNING
    job.status = JobStatus.COMPLETED
    assert job.is_finished


def test_snapshot_is_independent():
    state = JobState()
    state.add_new_jobs([make_job(1), make_job(2)])
    state.set_status(1, JobStatus.RUNNING)
    snap = state.snapshot()
    snap.check_invariants()
    assert [j.job_id for j in snap.running_jobs()] == [1]
    snap.set_status(1, JobStatus.COMPLETED)
    # Original untouched; indexes of both registries stay correct.
    assert [j.job_id for j in state.running_jobs()] == [1]
    assert [j.job_id for j in snap.finished_jobs()] == [1]
    state.check_invariants()
    snap.check_invariants()


def test_pickle_roundtrip_preserves_indexing():
    state = JobState()
    state.add_new_jobs([make_job(1), make_job(2)])
    state.set_status(2, JobStatus.RUNNING)
    clone = pickle.loads(pickle.dumps(state))
    clone.check_invariants()
    assert [j.job_id for j in clone.running_jobs()] == [2]
    clone.get(1).status = JobStatus.COMPLETED
    clone.check_invariants()
    assert [j.job_id for j in clone.finished_jobs()] == [1]
