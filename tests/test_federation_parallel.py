"""Parallel federation tests: serial == parallel parity, pickling, crashes.

The contracts under test:

* a :class:`ParallelFederationEngine` run is **bit-identical** to the serial
  :class:`FederationEngine` on the same factory/trace -- assignments,
  per-shard completion times, round logs and round counts -- for every stock
  router, including under per-shard failure-storm scenario timelines (worker
  processes are an execution detail, never a semantic one);
* the picklability contract behind the worker protocol: ``Job`` round-trips
  alone (unbound) and inside its registry (rebound), ``ScenarioSpec`` and
  timeline cluster managers round-trip, and ``ShardViewSummary`` crosses a
  pickle boundary intact;
* a worker that dies mid-run surfaces as a clean ``SimulationError`` in the
  parent -- no hang, no partial result;
* ``workers=1`` degenerates to the serial engine without spawning processes;
* streaming mode (``run_stream``) conserves jobs and reproduces the pooled
  statistics of the equivalent in-memory run.
"""

import os
import pickle

import pytest

from repro.core.abstractions import ClusterManager
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.federation import (
    FederationEngine,
    LocalShardBackend,
    ParallelFederationEngine,
    ScenarioManagerFactory,
    UniformShardFactory,
    drive_federation,
    make_router,
    router_names,
)
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling import FifoScheduling, SrtfScheduling
from repro.scenarios.registry import get_scenario
from repro.workloads.philly import PhillyTraceGenerator, generate_philly_trace

ROUND = 300.0


def small_trace(num_jobs=40, seed=7, jobs_per_hour=6.0):
    return generate_philly_trace(num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed)


def bench_factory(nodes_per_shard=4, scheduling=FifoScheduling,
                  cluster_manager_factory=None):
    return UniformShardFactory(
        nodes_per_shard=nodes_per_shard,
        scheduling_factory=scheduling,
        placement_factory=ConsolidatedPlacement,
        round_duration=ROUND,
        cluster_manager_factory=cluster_manager_factory,
    )


def run_serial(factory, num_shards, router_name, trace):
    engine = FederationEngine(
        factory.build_all(num_shards),
        make_router(router_name),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    )
    return engine.run()


def run_parallel(factory, num_shards, router_name, trace, workers=2, **kwargs):
    engine = ParallelFederationEngine(
        factory=factory,
        num_shards=num_shards,
        router=make_router(router_name),
        jobs=trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
        workers=workers,
        **kwargs,
    )
    return engine.run()


def completions(result):
    return {j.job_id: j.completion_time for j in result.jobs}


def assert_bit_parity(serial, parallel):
    assert serial.assignments == parallel.assignments
    for serial_shard, parallel_shard in zip(serial.shard_results, parallel.shard_results):
        assert completions(serial_shard) == completions(parallel_shard)
        assert serial_shard.round_log == parallel_shard.round_log
        assert serial_shard.rounds == parallel_shard.rounds


# ----------------------------------------------------------------------
# Serial == parallel bit-parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("router_name", router_names())
def test_parallel_matches_serial(router_name):
    trace = small_trace()
    factory = bench_factory()
    serial = run_serial(factory, 2, router_name, trace)
    parallel = run_parallel(factory, 2, router_name, trace, workers=2)
    assert_bit_parity(serial, parallel)
    assert serial.workers == 0
    assert parallel.workers == 2


@pytest.mark.parametrize("router_name", router_names())
def test_parallel_matches_serial_under_failure_storm(router_name):
    # Each shard runs its own compiled churn timeline, built *inside* the
    # worker from the picklable ScenarioManagerFactory; evictions, node
    # failures and routed gangs must interleave identically to the serial run.
    trace = small_trace(num_jobs=30, seed=3)
    factory = bench_factory(
        cluster_manager_factory=ScenarioManagerFactory(
            "failure-storm", smoke=True, seed_base=99
        )
    )
    serial = run_serial(factory, 2, router_name, trace)
    parallel = run_parallel(factory, 2, router_name, trace, workers=2)
    assert_bit_parity(serial, parallel)
    assert sum(r.eviction_count for r in parallel.shard_results) == sum(
        r.eviction_count for r in serial.shard_results
    )


def test_parallel_matches_serial_with_srtf_and_more_shards_than_workers():
    # 4 shards on 2 workers exercises multi-shard-per-worker ownership, and
    # SRTF exercises preemption decisions inside the workers.
    trace = small_trace(num_jobs=30, seed=11)
    factory = bench_factory(scheduling=SrtfScheduling)
    serial = run_serial(factory, 4, "queue-delay", trace)
    parallel = run_parallel(factory, 4, "queue-delay", trace, workers=2)
    assert_bit_parity(serial, parallel)


def test_parallel_spawn_context_matches_serial():
    # The protocol must be spawn-safe: nothing reaches the worker by memory
    # inheritance, everything crosses the pipe or the factory pickle.
    trace = small_trace(num_jobs=20, seed=5)
    factory = bench_factory()
    serial = run_serial(factory, 2, "least-loaded", trace)
    parallel = run_parallel(
        factory, 2, "least-loaded", trace, workers=2, mp_context="spawn"
    )
    assert_bit_parity(serial, parallel)


def test_parallel_timing_breakdown_populated():
    trace = small_trace(num_jobs=20, seed=5)
    factory = bench_factory()
    result = run_parallel(factory, 2, "round-robin", trace, workers=2)
    assert result.routing_time_s > 0
    assert result.advance_time_s > 0
    assert len(result.shard_busy_time_s()) == 2
    timing = result.summary().as_dict()["timing"]
    assert timing["workers"] == 2
    assert timing["advance_time_s"] == result.advance_time_s


# ----------------------------------------------------------------------
# workers=1 degenerates to the serial path
# ----------------------------------------------------------------------


def test_workers_one_uses_serial_engine(monkeypatch):
    import repro.federation.parallel as parallel_mod

    def forbid(*args, **kwargs):
        raise AssertionError("workers=1 must not build a worker pool")

    monkeypatch.setattr(parallel_mod, "WorkerPoolBackend", forbid)
    trace = small_trace(num_jobs=15, seed=2)
    factory = bench_factory()
    serial = run_serial(factory, 2, "queue-delay", trace)
    degenerate = run_parallel(factory, 2, "queue-delay", trace, workers=1)
    assert_bit_parity(serial, degenerate)
    assert degenerate.workers == 1


# ----------------------------------------------------------------------
# Worker crash surfaces as SimulationError, never a hang
# ----------------------------------------------------------------------


class ExitingManager(ClusterManager):
    """Kills its process on the first update past the trigger time."""

    name = "exiting"

    def __init__(self, after: float) -> None:
        self.after = after

    def update(self, cluster_state, current_time):
        if current_time >= self.after:
            os._exit(13)
        return []


class ExitingManagerFactory:
    """Picklable: shard 1's manager hard-exits mid-run, shard 0 is inert."""

    def __init__(self, after: float) -> None:
        self.after = after

    def __call__(self, shard_id: int):
        return ExitingManager(self.after) if shard_id == 1 else None


def test_worker_crash_raises_simulation_error():
    trace = small_trace(num_jobs=20, seed=5)
    factory = bench_factory(cluster_manager_factory=ExitingManagerFactory(after=3600.0))
    with pytest.raises(SimulationError, match="died|closed its pipe"):
        run_parallel(factory, 2, "round-robin", trace, workers=2)


def test_unpicklable_factory_fails_cleanly():
    # A lambda cannot cross a spawn boundary; the engine must raise at
    # startup, not deadlock.  (The fork context tolerates closures by memory
    # inheritance, which is why spawn-safety is the contract tests pin.)
    trace = small_trace(num_jobs=10, seed=5)
    factory = bench_factory(cluster_manager_factory=lambda shard_id: None)
    with pytest.raises(Exception):
        run_parallel(factory, 2, "round-robin", trace, workers=2, mp_context="spawn")


# ----------------------------------------------------------------------
# Pickling round-trips (the worker-protocol contract)
# ----------------------------------------------------------------------


def test_job_pickles_without_dragging_registry():
    state = JobState()
    jobs = [Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=i) for i in range(3)]
    for job in jobs:
        state.track(job)
    alone = pickle.loads(pickle.dumps(jobs[0]))
    assert alone.job_id == jobs[0].job_id
    assert alone.num_gpus == jobs[0].num_gpus
    assert "_registry" not in alone.__dict__
    # An unbound job can be adopted by a fresh registry and live normally.
    fresh = JobState()
    fresh.track(alone)
    alone.status = JobStatus.RUNNING
    assert [j.job_id for j in fresh.running_jobs()] == [alone.job_id]


def test_job_state_pickle_rebinds_jobs():
    state = JobState()
    for i in range(3):
        state.track(Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=i))
    clone = pickle.loads(pickle.dumps(state))
    assert len(clone.all_jobs()) == 3
    for job in clone.all_jobs():
        assert job.__dict__["_registry"] is clone
    # Status writes on the clone keep the clone's indexes in sync.
    job = clone.all_jobs()[0]
    job.status = JobStatus.RUNNING
    assert [j.job_id for j in clone.running_jobs()] == [job.job_id]


def test_scenario_spec_and_timeline_manager_pickle():
    spec = get_scenario("failure-storm", smoke=True)
    spec_clone = pickle.loads(pickle.dumps(spec))
    assert spec_clone.name == spec.name
    manager = spec.compile(seed=42).make_cluster_manager()
    clone = pickle.loads(pickle.dumps(manager))
    for t in (0.0, 3600.0, 86400.0):
        assert clone.next_event_time(t) == manager.next_event_time(t)


def test_scenario_manager_factory_pickles_and_seeds_per_shard():
    factory = ScenarioManagerFactory("failure-storm", smoke=True, seed_base=7)
    clone = pickle.loads(pickle.dumps(factory))
    # Different shards compile different timelines; the same shard compiles
    # the same timeline on both sides of the pickle.
    assert clone(0).next_event_time(0.0) == factory(0).next_event_time(0.0)
    events_0 = factory(0).next_event_time(0.0)
    events_1 = factory(1).next_event_time(0.0)
    assert events_0 is not None and events_1 is not None


def test_shard_view_summary_pickles_and_with_queued():
    factory = bench_factory()
    shard = factory.build(0)
    summary = shard.view_summary()
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary
    job = Job(arrival_time=0.0, num_gpus=4, duration=600.0, job_id=1)
    grown = summary.with_queued(job)
    assert grown.pending_gpu_demand == summary.pending_gpu_demand + 4
    assert grown.outstanding_gpu_seconds == pytest.approx(
        summary.outstanding_gpu_seconds + job.remaining_work * 4
    )
    assert grown.queued_jobs == summary.queued_jobs + 1


# ----------------------------------------------------------------------
# Streaming mode
# ----------------------------------------------------------------------


def test_run_stream_conserves_jobs_and_stats():
    generator = PhillyTraceGenerator(num_jobs=30, jobs_per_hour=6.0, seed=7)
    factory = bench_factory()
    reference = ParallelFederationEngine(
        factory=factory,
        num_shards=2,
        router=make_router("round-robin"),
        jobs=generator.generate().fresh_jobs(),
        workers=2,
    ).run()
    stream = ParallelFederationEngine(
        factory=factory,
        num_shards=2,
        router=make_router("round-robin"),
        jobs=generator.iter_jobs(),
        workers=2,
    ).run_stream()
    assert stream.total_jobs == 30
    assert stream.jobs_per_shard == reference.jobs_per_shard()
    assert stream.finished_jobs() == reference.pooled_stats().count
    assert stream.avg_jct() == pytest.approx(reference.pooled_stats().avg_jct)
    assert stream.total_rounds() == reference.total_rounds()
    assert stream.peak_rss_mib > 0


def test_run_stream_requires_two_workers():
    factory = bench_factory()
    engine = ParallelFederationEngine(
        factory=factory,
        num_shards=2,
        router=make_router("round-robin"),
        jobs=iter([]),
        workers=1,
    )
    with pytest.raises(ConfigurationError, match="workers >= 2"):
        engine.run_stream()


def test_drive_federation_rejects_unsorted_stream():
    factory = bench_factory()
    backend = LocalShardBackend(factory.build_all(2))
    jobs = [
        Job(arrival_time=600.0, num_gpus=1, duration=600.0, job_id=2),
        Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1),
    ]
    with pytest.raises(ConfigurationError, match="not sorted"):
        drive_federation(backend, make_router("round-robin"), jobs)


def test_philly_iter_jobs_matches_generate():
    generator = PhillyTraceGenerator(num_jobs=25, jobs_per_hour=8.0, seed=3)
    eager = generator.generate().jobs
    lazy = list(generator.iter_jobs())
    assert [(j.job_id, j.arrival_time, j.num_gpus, j.duration) for j in eager] == [
        (j.job_id, j.arrival_time, j.num_gpus, j.duration) for j in lazy
    ]
