"""Unit and regression tests for the event-heap simulator core.

Covers the event primitives (:class:`~repro.core.events.SimEvent` ordering,
:class:`~repro.core.events.EventHeap` behaviour), the deterministic
``(time, kind, id)`` tie-break contract, the ``engine=`` switch validation,
the exact clock arithmetic the event core uses for O(1) jumps, and the
simultaneous-event regression: an arrival, a completion and a cluster-churn
firing all landing on the *same* round boundary must replay bit-identically
under both engines.
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.core.events import (
    KIND_ARRIVAL,
    KIND_CLUSTER,
    KIND_COMPLETION,
    KIND_POLICY,
    EventHeap,
    SimEvent,
)
from repro.core.exceptions import ConfigurationError
from repro.core.job import Job
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.simulator.engine import Simulator
from repro.workloads.philly import generate_philly_trace

ROUND = 300.0


def make_sim(jobs, engine, cluster_manager=None, **kwargs):
    return Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=jobs,
        scheduling_policy=FifoScheduling(),
        placement_policy=ConsolidatedPlacement(),
        round_duration=ROUND,
        cluster_manager=cluster_manager,
        engine=engine,
        **kwargs,
    )


def assert_identical(first, second):
    assert {j.job_id: j.completion_time for j in first.jobs} == {
        j.job_id: j.completion_time for j in second.jobs
    }
    assert first.round_log == second.round_log
    assert first.rounds == second.rounds
    assert first.end_time == second.end_time


# ----------------------------------------------------------------------
# Event primitives
# ----------------------------------------------------------------------


def test_sim_event_kind_tie_break_order():
    """At one boundary round: cluster churn < arrival < policy < completion.

    Boundary kinds must sort ahead of completions so a tied boundary forces
    the full round that materialises the completion, never the reverse.
    """
    assert KIND_CLUSTER < KIND_ARRIVAL < KIND_POLICY < KIND_COMPLETION
    tied = [
        SimEvent(10, KIND_COMPLETION, 3),
        SimEvent(10, KIND_ARRIVAL, 7),
        SimEvent(10, KIND_POLICY, 1),
        SimEvent(10, KIND_CLUSTER, 5),
    ]
    assert [e.kind for e in sorted(tied)] == [
        KIND_CLUSTER,
        KIND_ARRIVAL,
        KIND_POLICY,
        KIND_COMPLETION,
    ]
    # Same time and kind: the id is the last tie-breaker, so ordering is
    # total and never falls through to object identity.
    same_kind = [SimEvent(10, KIND_COMPLETION, 9), SimEvent(10, KIND_COMPLETION, 2)]
    assert [e.id for e in sorted(same_kind)] == [2, 9]
    # Time dominates everything.
    assert SimEvent(9, KIND_COMPLETION, 99) < SimEvent(10, KIND_CLUSTER, 0)


def test_sim_event_kind_names():
    assert SimEvent(0, KIND_ARRIVAL, 1).kind_name == "arrival"
    assert SimEvent(0, KIND_COMPLETION, 1).kind_name == "completion"
    assert SimEvent(0, KIND_CLUSTER, 1).kind_name == "cluster"
    assert SimEvent(0, KIND_POLICY, 1).kind_name == "policy"


def test_event_heap_orders_pushes():
    heap = EventHeap()
    events = [
        SimEvent(30, KIND_COMPLETION, 1),
        SimEvent(10, KIND_COMPLETION, 4),
        SimEvent(10, KIND_CLUSTER, 2),
        SimEvent(20, KIND_ARRIVAL, 3),
        SimEvent(10, KIND_COMPLETION, 2),
    ]
    for event in events:
        heap.push(event)
    assert len(heap) == 5
    assert bool(heap)
    assert heap.peek() == SimEvent(10, KIND_CLUSTER, 2)
    assert [heap.pop() for _ in range(len(heap))] == sorted(events)
    assert not heap
    heap.push(SimEvent(1, KIND_ARRIVAL, 1))
    heap.clear()
    assert len(heap) == 0


# ----------------------------------------------------------------------
# Engine switch
# ----------------------------------------------------------------------


def test_unknown_engine_rejected():
    trace = generate_philly_trace(num_jobs=4, jobs_per_hour=4.0, seed=1)
    with pytest.raises(ConfigurationError, match="unknown engine"):
        make_sim(trace.fresh_jobs(), engine="instant")


def test_engine_selects_event_core():
    trace = generate_philly_trace(num_jobs=4, jobs_per_hour=4.0, seed=1)
    assert make_sim(trace.fresh_jobs(), engine="rounds")._event_core is None
    assert make_sim(trace.fresh_jobs(), engine="events")._event_core is not None


# ----------------------------------------------------------------------
# Exact clock arithmetic (the O(1)-jump licence)
# ----------------------------------------------------------------------


def _oracle_rounds_until(clock, rd, horizon, cap):
    count = 0
    while count < cap and clock + rd < horizon:
        clock += rd
        count += 1
    return count


@pytest.mark.parametrize("rd", [300.0, 60.0, 287.5, 299.25])
def test_rounds_until_matches_oracle_accumulation(rd):
    """Closed-form and mirrored paths both equal the oracle's float loop."""
    trace = generate_philly_trace(num_jobs=4, jobs_per_hour=4.0, seed=1)
    sim = make_sim(trace.fresh_jobs(), engine="events")
    core = sim._event_core
    sim.manager.round_duration = rd
    for start_rounds in (0, 1, 7, 1001):
        clock = 0.0
        for _ in range(start_rounds):
            clock += rd
        sim.manager.current_time = clock
        for horizon in (
            clock,
            clock + 0.5 * rd,
            clock + rd,
            clock + 3.0 * rd,
            clock + 3.5 * rd,
            clock + 1000 * rd,
            float("inf"),
        ):
            for cap in (0, 1, 5, 2000):
                assert core._rounds_until(horizon, cap) == _oracle_rounds_until(
                    clock, rd, horizon, cap
                ), (rd, clock, horizon, cap)


@pytest.mark.parametrize("rd", [300.0, 287.5])
def test_advance_clock_bit_equal_to_repeated_adds(rd):
    trace = generate_philly_trace(num_jobs=4, jobs_per_hour=4.0, seed=1)
    sim = make_sim(trace.fresh_jobs(), engine="events")
    core = sim._event_core
    sim.manager.round_duration = rd
    sim.manager.current_time = 0.0
    sim.manager.round_number = 0
    core._advance_clock(1234)
    expected = 0.0
    for _ in range(1234):
        expected += rd
    assert sim.manager.current_time == expected
    assert sim.manager.round_number == 1234


# ----------------------------------------------------------------------
# Simultaneous-event regression
# ----------------------------------------------------------------------


class BoundaryChurn:
    """Fails one node at an exact round boundary, recovers it later."""

    name = "boundary-churn"

    def __init__(self, fail_at, recover_at, node_id=3):
        self.fail_at = fail_at
        self.recover_at = recover_at
        self.node_id = node_id
        self.failed = False
        self.recovered = False

    def update(self, cluster_state, current_time):
        if not self.failed and current_time >= self.fail_at:
            self.failed = True
            return cluster_state.mark_node_failed(self.node_id)
        if not self.recovered and current_time >= self.recover_at:
            self.recovered = True
            cluster_state.mark_node_recovered(self.node_id)
        return []

    def next_event_time(self, current_time):
        if not self.failed:
            return self.fail_at
        if not self.recovered:
            return self.recover_at
        return None

    def drain_applied(self):
        return []


def _collision_jobs():
    # Job 1's completion lands exactly on t=1500 (a round boundary): its
    # generic-model launch overhead eats 20 s of round 0, so a duration of
    # 5 * ROUND - 20 finishes precisely at the end of round 4.  Job 2
    # *arrives* at t=1500, and BoundaryChurn fails a node at t=1500 -- a
    # three-way simultaneous event at one boundary.
    return [
        Job(arrival_time=0.0, num_gpus=4, duration=5 * ROUND - 20.0, job_id=1),
        Job(arrival_time=1500.0, num_gpus=4, duration=2 * ROUND, job_id=2),
        Job(arrival_time=1500.0, num_gpus=2, duration=3 * ROUND, job_id=3),
    ]


def test_simultaneous_arrival_completion_and_churn_parity():
    results = {}
    for engine in ("rounds", "events"):
        sim = make_sim(
            _collision_jobs(),
            engine=engine,
            cluster_manager=BoundaryChurn(fail_at=1500.0, recover_at=2400.0),
        )
        results[engine] = sim.run()
    assert_identical(results["rounds"], results["events"])
    completions = {j.job_id: j.completion_time for j in results["events"].jobs}
    # The collision actually happened: job 1 completed at the same boundary
    # where jobs 2/3 arrived and the churn fired.
    assert completions[1] == 1500.0
    assert all(t is not None for t in completions.values())


def test_simultaneous_events_parity_without_churn():
    """Arrival + completion tied at one boundary, static membership."""
    results = {}
    for engine in ("rounds", "events"):
        results[engine] = make_sim(_collision_jobs(), engine=engine).run()
    assert_identical(results["rounds"], results["events"])
    completions = {j.job_id: j.completion_time for j in results["events"].jobs}
    assert completions[1] == 1500.0


# ----------------------------------------------------------------------
# Streaming configuration
# ----------------------------------------------------------------------


def test_round_log_disabled_parity():
    """round_log_limit=0 (the streaming configuration) keeps engine parity."""
    trace = generate_philly_trace(num_jobs=30, jobs_per_hour=5.0, seed=17)
    results = {}
    for engine in ("rounds", "events"):
        results[engine] = make_sim(
            trace.fresh_jobs(), engine=engine, round_log_limit=0
        ).run()
    rounds, events = results["rounds"], results["events"]
    assert {j.job_id: j.completion_time for j in rounds.jobs} == {
        j.job_id: j.completion_time for j in events.jobs
    }
    assert rounds.rounds == events.rounds
    assert rounds.end_time == events.end_time
    assert list(rounds.round_log) == list(events.round_log) == []


def test_event_engine_is_deterministic():
    trace = generate_philly_trace(num_jobs=25, jobs_per_hour=6.0, seed=5)
    first = make_sim(trace.fresh_jobs(), engine="events").run()
    second = make_sim(trace.fresh_jobs(), engine="events").run()
    assert_identical(first, second)
