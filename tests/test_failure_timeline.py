"""FailureInjector timeline compilation: parity with the per-round process.

The injector's documented seed semantics -- one RNG stream, one draw per node
per round, failure check while healthy / recovery check while failed -- must
hold identically whether the process is executed round by round against the
live cluster (``step``) or pre-sampled into a deterministic event timeline
(``compile_timeline``).  The timeline form additionally must leave the
simulator's fast-forward enabled and produce bit-identical schedules with it
on or off.
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.failures import FailureInjector
from repro.core.exceptions import ConfigurationError
from repro.policies.scheduling.fifo import FifoScheduling
from repro.scenarios.events import NodeFailureEvent, NodeRecoveryEvent
from repro.simulator.engine import Simulator
from repro.workloads.philly import generate_philly_trace

ROUND = 300.0


def _health_history_step(num_nodes, rounds, **probs):
    """Run the classic per-round process; returns per-round failed-node sets."""
    cluster = build_cluster(num_nodes=num_nodes, gpus_per_node=2)
    injector = FailureInjector(seed=123, **probs)
    history = []
    for _ in range(rounds):
        injector.step(cluster)
        history.append(frozenset(n for n, node in cluster.nodes.items() if node.failed))
    return history


def _health_history_timeline(num_nodes, rounds, **probs):
    """Apply the compiled timeline at the same round times; same output shape."""
    cluster = build_cluster(num_nodes=num_nodes, gpus_per_node=2)
    injector = FailureInjector(seed=123, **probs)
    manager = injector.as_cluster_manager(
        node_ids=list(cluster.nodes), round_duration=ROUND, num_rounds=rounds
    )
    history = []
    for round_number in range(rounds):
        manager.update(cluster, round_number * ROUND)
        history.append(frozenset(n for n, node in cluster.nodes.items() if node.failed))
    return history


def test_compiled_timeline_matches_per_round_stepping():
    probs = dict(failure_prob=0.05, recovery_prob=0.3)
    stepped = _health_history_step(8, 120, **probs)
    compiled = _health_history_timeline(8, 120, **probs)
    assert stepped == compiled
    # The process must actually churn for the parity to mean anything.
    assert any(stepped), "no failures sampled; pick a seed/prob that churns"


def test_compiled_timeline_reports_same_affected_jobs():
    probs = dict(failure_prob=0.2, recovery_prob=0.5)
    # Per-round form, with a job pinned to every node.
    cluster = build_cluster(num_nodes=4, gpus_per_node=2)
    for node_id in list(cluster.nodes):
        cluster.assign(100 + node_id, [g.gpu_id for g in cluster.gpus_on_node(node_id)])
    stepped_affected = []
    injector = FailureInjector(seed=7, **probs)
    for _ in range(30):
        stepped_affected.append(tuple(injector.step(cluster)))

    # Timeline form on an identically prepared cluster.
    cluster = build_cluster(num_nodes=4, gpus_per_node=2)
    for node_id in list(cluster.nodes):
        cluster.assign(100 + node_id, [g.gpu_id for g in cluster.gpus_on_node(node_id)])
    manager = FailureInjector(seed=7, **probs).as_cluster_manager(
        node_ids=list(cluster.nodes), round_duration=ROUND, num_rounds=30
    )
    timeline_affected = [
        tuple(manager.update(cluster, r * ROUND)) for r in range(30)
    ]
    assert stepped_affected == timeline_affected


def test_compile_timeline_is_deterministic_and_pure():
    injector = FailureInjector(failure_prob=0.1, recovery_prob=0.2, seed=9)
    first = injector.compile_timeline([0, 1, 2, 3], ROUND, 50)
    # Interleaved step() calls must not perturb compilation (fresh RNG).
    injector.step(build_cluster(num_nodes=4, gpus_per_node=1))
    second = injector.compile_timeline([0, 1, 2, 3], ROUND, 50)
    assert first == second
    assert all(
        isinstance(e, (NodeFailureEvent, NodeRecoveryEvent)) for e in first
    )
    times = [e.time for e in first]
    assert times == sorted(times)


def test_noop_injector_compiles_to_empty_timeline():
    assert FailureInjector().compile_timeline([0, 1], ROUND, 100) == []


def test_compile_timeline_validation():
    injector = FailureInjector(failure_prob=0.1)
    with pytest.raises(ConfigurationError):
        injector.compile_timeline([0], 0.0, 10)
    with pytest.raises(ConfigurationError):
        injector.compile_timeline([0], ROUND, -1)


def test_failure_timeline_run_keeps_fast_forward_and_parity():
    """Failure runs no longer force per-round stepping: skipping stays on and
    produces the same schedule it would without skipping."""
    trace = generate_philly_trace(num_jobs=25, jobs_per_hour=6.0, seed=5)

    def run(fast_forward):
        cluster = build_cluster(num_nodes=6, gpus_per_node=4)
        manager = FailureInjector(
            failure_prob=0.01, recovery_prob=0.2, seed=3
        ).as_cluster_manager(
            node_ids=list(cluster.nodes), round_duration=ROUND, num_rounds=500
        )
        sim = Simulator(
            cluster_state=cluster,
            jobs=trace.fresh_jobs(),
            scheduling_policy=FifoScheduling(),
            cluster_manager=manager,
            round_duration=ROUND,
            fast_forward=fast_forward,
        )
        assert sim.fast_forward is fast_forward
        return sim.run()

    with_skip = run(True)
    without_skip = run(False)
    assert with_skip.rounds == without_skip.rounds
    assert {j.job_id: j.completion_time for j in with_skip.jobs} == {
        j.job_id: j.completion_time for j in without_skip.jobs
    }
    assert with_skip.round_log == without_skip.round_log
