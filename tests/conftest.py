"""Shared pytest wiring: the ``fuzz`` marker and its ``--fuzz`` opt-in.

Tier-1 (plain ``pytest``) runs every test except those marked ``fuzz``,
which keeps the default wall time flat; ``pytest --fuzz`` additionally runs
the wide randomized parity sweeps (see ``test_event_parity_fuzz.py``).  The
fixed fuzz corpus is *not* marked and always runs, so tier-1 still carries a
differential check per drawn dimension.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz",
        action="store_true",
        default=False,
        help="also run the wide randomized parity sweeps (marker: fuzz)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "fuzz: wide randomized differential sweep; skipped unless --fuzz is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--fuzz"):
        return
    skip_fuzz = pytest.mark.skip(reason="wide fuzz sweep; opt in with --fuzz")
    for item in items:
        if "fuzz" in item.keywords:
            item.add_marker(skip_fuzz)
