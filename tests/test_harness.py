"""Tests for the experiment harness sweep runner."""

from repro.experiments.harness import PolicySpec, SweepTask, run_sweep
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.srtf import SrtfScheduling
from repro.workloads.philly import generate_philly_trace


def make_tasks():
    trace = generate_philly_trace(num_jobs=20, jobs_per_hour=6.0, seed=17)
    return [
        SweepTask(
            label="fifo",
            trace=trace,
            spec=PolicySpec(label="fifo", scheduling=FifoScheduling),
            run_kwargs={"num_nodes": 4},
        ),
        SweepTask(
            label="srtf",
            trace=trace,
            spec=PolicySpec(label="srtf", scheduling=SrtfScheduling),
            run_kwargs={"num_nodes": 4},
        ),
    ]


def test_run_sweep_serial_and_parallel_agree():
    serial = run_sweep(make_tasks(), processes=1)
    parallel = run_sweep(make_tasks(), processes=2)
    assert [label for label, _ in serial] == ["fifo", "srtf"]
    assert [label for label, _ in parallel] == ["fifo", "srtf"]
    for (label_s, result_s), (label_p, result_p) in zip(serial, parallel):
        assert label_s == label_p
        assert result_s.rounds == result_p.rounds
        assert result_s.avg_jct() == result_p.avg_jct()


def test_run_sweep_falls_back_to_serial_for_unpicklable_specs():
    import pytest

    tasks = make_tasks()
    # A lambda factory cannot be pickled; the sweep must still complete, but
    # loudly, so a "parallel" sweep never degrades to serial in silence.
    tasks[0].spec = PolicySpec(label="fifo", scheduling=lambda: FifoScheduling())
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        results = run_sweep(tasks, processes=2)
    assert len(results) == 2
    assert all(result.rounds > 0 for _, result in results)


def test_run_sweep_empty():
    assert run_sweep([]) == []
