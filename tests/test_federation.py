"""Federation-layer tests: routing, shard parity, summary aggregation.

The contracts under test:

* a 1-shard federation is **bit-identical** to a plain :class:`Simulator`
  run of the same trace (routing adds nothing but a queue hop);
* a federation run with per-shard fast-forward on vs. per-round stepping
  produces identical per-shard schedules *and* identical routing decisions
  (routers read shard state only at pause points, where fast-forward parity
  holds);
* every job lives in exactly one shard's registry, shard cluster indexes
  stay invariant-clean, and per-shard scenario timelines compose with
  routing;
* routers are deterministic and honour the feasibility filter;
* :func:`repro.metrics.summary.federation_summary` handles the edge cases
  sharding creates: empty shards, single-job shards, percentiles over tiny
  samples.
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.core.blox_manager import BloxManager
from repro.core.exceptions import ConfigurationError, SimulationError
from repro.core.job import Job
from repro.federation import (
    FederationEngine,
    FederationRouter,
    GpuTypeAffinityRouter,
    LeastLoadedRouter,
    QueueDelayRouter,
    RoundRobinRouter,
    ShardSimulator,
    ShardViewSummary,
    build_uniform_shards,
    make_router,
    router_names,
    summarize_shard,
)
from repro.metrics.summary import FederationSummary, federation_summary, percentile
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling import FifoScheduling, SrtfScheduling
from repro.scenarios.registry import get_scenario
from repro.simulator.engine import RoundRecord, Simulator
from repro.workloads.philly import generate_philly_trace

ROUND = 300.0


def small_trace(num_jobs=40, seed=7, jobs_per_hour=6.0):
    return generate_philly_trace(num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed)


def make_federation(num_shards, router, trace, fast_forward=True, nodes_per_shard=4,
                    scheduling=FifoScheduling, cluster_manager_factory=None):
    shards = build_uniform_shards(
        num_shards,
        nodes_per_shard,
        scheduling,
        ConsolidatedPlacement,
        round_duration=ROUND,
        fast_forward=fast_forward,
        cluster_manager_factory=cluster_manager_factory,
    )
    engine = FederationEngine(
        shards, router, trace.fresh_jobs(), tracked_job_ids=trace.tracked_ids()
    )
    return engine, shards


def completions(result):
    return {j.job_id: j.completion_time for j in result.jobs}


def assert_federation_parity(fastforward, stepping):
    assert fastforward.assignments == stepping.assignments
    for ff_shard, step_shard in zip(fastforward.shard_results, stepping.shard_results):
        assert completions(ff_shard) == completions(step_shard)
        assert ff_shard.round_log == step_shard.round_log
        assert ff_shard.rounds == step_shard.rounds


# ----------------------------------------------------------------------
# Single-shard federation == plain simulator
# ----------------------------------------------------------------------


def test_single_shard_matches_mono_simulator():
    trace = small_trace()
    mono = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        placement_policy=ConsolidatedPlacement(),
        round_duration=ROUND,
    ).run()
    engine, _ = make_federation(1, RoundRobinRouter(), trace)
    federated = engine.run()
    shard = federated.shard_results[0]
    assert completions(shard) == completions(mono)
    assert shard.round_log == mono.round_log
    assert shard.rounds == mono.rounds


def test_single_shard_matches_mono_simulator_stepping():
    trace = small_trace()
    mono = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        placement_policy=ConsolidatedPlacement(),
        round_duration=ROUND,
        fast_forward=False,
    ).run()
    engine, _ = make_federation(1, RoundRobinRouter(), trace, fast_forward=False)
    shard = engine.run().shard_results[0]
    assert completions(shard) == completions(mono)
    assert shard.round_log == mono.round_log


# ----------------------------------------------------------------------
# Fast-forward vs stepping parity across the routing layer
# ----------------------------------------------------------------------


@pytest.mark.parametrize("router_name", router_names())
def test_federation_fast_forward_parity(router_name):
    trace = small_trace()
    ff_engine, ff_shards = make_federation(2, make_router(router_name), trace)
    step_engine, _ = make_federation(2, make_router(router_name), trace, fast_forward=False)
    fastforward = ff_engine.run()
    stepping = step_engine.run()
    assert_federation_parity(fastforward, stepping)
    for shard in ff_shards:
        shard.cluster_state.check_invariants()


def test_federation_parity_with_srtf():
    # A second gang policy exercises preemption decisions across shards.
    trace = small_trace(num_jobs=30, seed=11)
    ff_engine, _ = make_federation(2, QueueDelayRouter(), trace, scheduling=SrtfScheduling)
    step_engine, _ = make_federation(
        2, QueueDelayRouter(), trace, scheduling=SrtfScheduling, fast_forward=False
    )
    assert_federation_parity(ff_engine.run(), step_engine.run())


def test_federation_parity_with_per_shard_scenarios():
    # Each shard runs its own compiled churn timeline; routing events and
    # scenario events must both bound the shard's fast-forward.
    trace = small_trace(num_jobs=30, seed=3)

    def managers(seed_base):
        def factory(shard_id):
            scenario = get_scenario("failure-storm", smoke=True).compile(seed_base + shard_id)
            return scenario.make_cluster_manager()

        return factory

    ff_engine, ff_shards = make_federation(
        2, QueueDelayRouter(), trace, cluster_manager_factory=managers(99)
    )
    step_engine, _ = make_federation(
        2, QueueDelayRouter(), trace, fast_forward=False, cluster_manager_factory=managers(99)
    )
    fastforward = ff_engine.run()
    stepping = step_engine.run()
    assert_federation_parity(fastforward, stepping)
    for shard in ff_shards:
        shard.cluster_state.check_invariants()


# ----------------------------------------------------------------------
# Registry semantics: each job lives in exactly one shard
# ----------------------------------------------------------------------


def test_every_job_routed_to_exactly_one_shard():
    trace = small_trace()
    engine, shards = make_federation(2, LeastLoadedRouter(), trace)
    result = engine.run()
    all_ids = {job.job_id for job in trace.jobs}
    assert set(result.assignments) == all_ids
    seen = {}
    for index, shard_result in enumerate(result.shard_results):
        for job in shard_result.jobs:
            assert job.job_id not in seen, "job registered in two shards"
            seen[job.job_id] = index
            assert result.assignments[job.job_id] == index
    assert set(seen) == all_ids
    # Per-shard registries really are disjoint live objects.
    for shard in shards:
        for job_id in shard.tracked_job_ids:
            assert job_id in shard.job_state
    assert sum(len(r.jobs) for r in result.shard_results) == len(all_ids)


def test_result_accessors():
    trace = small_trace(num_jobs=20, seed=5)
    engine, _ = make_federation(2, RoundRobinRouter(), trace)
    result = engine.run()
    assert result.num_shards == 2
    assert sum(result.jobs_per_shard()) == 20
    assert result.total_rounds() == sum(r.rounds for r in result.shard_results)
    assert [j.job_id for j in result.jobs()] == sorted(j.job_id for j in result.jobs())
    assert result.makespan() > 0
    assert result.avg_jct() > 0


# ----------------------------------------------------------------------
# Feasibility and configuration errors
# ----------------------------------------------------------------------


def test_infeasible_gang_raises():
    # 2 nodes x 4 GPUs per shard = 8 GPUs; a 16-GPU gang fits nowhere.
    jobs = [Job(arrival_time=0.0, num_gpus=16, duration=3600.0, job_id=1)]
    shards = build_uniform_shards(2, 2, FifoScheduling, round_duration=ROUND)
    engine = FederationEngine(shards, RoundRobinRouter(), jobs)
    with pytest.raises(SimulationError, match="no feasible routing"):
        engine.run()


def test_oversized_gangs_skip_small_shards():
    # An 8-GPU gang cannot enter the 1-node shard, so round-robin must place
    # both large gangs on shard 0 (4 nodes) while small jobs still rotate.
    jobs = [
        Job(arrival_time=0.0, num_gpus=8, duration=3600.0, job_id=1),
        Job(arrival_time=0.0, num_gpus=8, duration=3600.0, job_id=2),
        Job(arrival_time=0.0, num_gpus=1, duration=3600.0, job_id=3),
    ]
    shards = [
        ShardSimulator(
            shard_id=0,
            cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
            scheduling_policy=FifoScheduling(),
            round_duration=ROUND,
        ),
        ShardSimulator(
            shard_id=1,
            cluster_state=build_cluster(num_nodes=1, gpus_per_node=4),
            scheduling_policy=FifoScheduling(),
            round_duration=ROUND,
        ),
    ]
    result = FederationEngine(shards, RoundRobinRouter(), jobs).run()
    assert result.assignments[1] == 0
    assert result.assignments[2] == 0


def test_engine_rejects_misnumbered_shards():
    shards = build_uniform_shards(2, 2, FifoScheduling, round_duration=ROUND)
    shards[1].shard_id = 7
    with pytest.raises(ConfigurationError, match="shard ids must equal"):
        FederationEngine(shards, RoundRobinRouter(), small_trace(num_jobs=5).fresh_jobs())


def test_engine_rejects_mixed_round_durations():
    shards = [
        ShardSimulator(
            shard_id=0,
            cluster_state=build_cluster(num_nodes=2, gpus_per_node=4),
            scheduling_policy=FifoScheduling(),
            round_duration=300.0,
        ),
        ShardSimulator(
            shard_id=1,
            cluster_state=build_cluster(num_nodes=2, gpus_per_node=4),
            scheduling_policy=FifoScheduling(),
            round_duration=600.0,
        ),
    ]
    with pytest.raises(ConfigurationError, match="round_duration"):
        FederationEngine(shards, RoundRobinRouter(), small_trace(num_jobs=5).fresh_jobs())


def test_engine_rejects_empty_workload():
    shards = build_uniform_shards(1, 2, FifoScheduling, round_duration=ROUND)
    with pytest.raises(ConfigurationError, match="empty workload"):
        FederationEngine(shards, RoundRobinRouter(), [])


def test_submit_after_finish_raises():
    jobs = [Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1)]
    shards = build_uniform_shards(1, 1, FifoScheduling, round_duration=ROUND)
    FederationEngine(shards, RoundRobinRouter(), jobs).run()
    with pytest.raises(SimulationError, match="draining"):
        shards[0].submit(Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=2))


def test_blox_manager_rejects_out_of_order_submission():
    manager = BloxManager(trace_jobs=[], round_duration=ROUND)
    manager.submit_job(Job(arrival_time=600.0, num_gpus=1, duration=60.0, job_id=2))
    with pytest.raises(ConfigurationError, match="out of\\s+order"):
        manager.submit_job(Job(arrival_time=0.0, num_gpus=1, duration=60.0, job_id=1))
    assert [j.job_id for j in manager.queued_jobs()] == [2]


def test_make_router_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown router"):
        make_router("nope")


# ----------------------------------------------------------------------
# Router behaviour and determinism
# ----------------------------------------------------------------------


def _view(shard_id, num_nodes=2, gpus_per_node=4, gpu_type="v100", jobs=(), queued=(),
          now=0.0, all_failed=False):
    cluster = build_cluster(num_nodes=num_nodes, gpus_per_node=gpus_per_node, gpu_type=gpu_type)
    from repro.core.job_state import JobState

    state = JobState()
    for job, running_gpus in jobs:
        state.track(job)
        if running_gpus:
            gpu_ids = [g.gpu_id for g in cluster.free_gpus()[:running_gpus]]
            cluster.assign(job.job_id, gpu_ids)
            from repro.core.job import JobStatus

            job.allocated_gpus = sorted(gpu_ids)
            job.status = JobStatus.RUNNING
    if all_failed:
        for node_id in list(cluster.nodes):
            cluster.mark_node_failed(node_id)
    return summarize_shard(
        shard_id=shard_id,
        cluster_state=cluster,
        job_state=state,
        current_time=now,
        queued_jobs=tuple(queued),
    )


def test_round_robin_cycles_deterministically():
    views = [_view(0), _view(1), _view(2)]
    assert all(isinstance(v, ShardViewSummary) for v in views)
    job = Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1)
    router = make_router("round-robin")
    first = [router.route(job, views) for _ in range(6)]
    router2 = make_router("round-robin")
    second = [router2.route(job, views) for _ in range(6)]
    assert first == [0, 1, 2, 0, 1, 2]
    assert first == second


def test_least_loaded_prefers_idle_shard():
    busy_job = Job(arrival_time=0.0, num_gpus=4, duration=7200.0, job_id=50)
    busy = _view(0, jobs=[(busy_job, 4)])
    idle = _view(1)
    job = Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1)
    assert LeastLoadedRouter().route(job, [busy, idle]) == 1
    # Ties break on the lower shard id.
    assert LeastLoadedRouter().route(job, [_view(0), _view(1)]) == 0


def test_gpu_affinity_prefers_matching_type():
    v100 = _view(0, gpu_type="v100")
    a100 = _view(1, gpu_type="a100")
    job = Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1, gpu_type="a100")
    assert GpuTypeAffinityRouter().route(job, [v100, a100]) == 1
    # Unknown type degrades to least-loaded (shard 0 on the tie).
    other = Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=2, gpu_type="k80")
    assert GpuTypeAffinityRouter().route(other, [v100, a100]) == 0


def test_routers_avoid_dead_shards():
    # A fully failed shard reports capacity_utilization == 0.0; it must
    # rank as maximally loaded, not as idle, for every load-based router.
    dead = _view(0, all_failed=True)
    busy_job = Job(arrival_time=0.0, num_gpus=4, duration=7200.0, job_id=70)
    busy = _view(1, jobs=[(busy_job, 4)])
    job = Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1)
    assert LeastLoadedRouter().route(job, [dead, busy]) == 1
    assert GpuTypeAffinityRouter().route(job, [dead, busy]) == 1
    assert QueueDelayRouter().route(job, [dead, busy]) == 1


def test_queue_delay_sees_backlog_and_queued_gangs():
    long_job = Job(arrival_time=0.0, num_gpus=4, duration=72000.0, job_id=60)
    backlogged = _view(0, jobs=[(long_job, 4)])
    idle = _view(1)
    job = Job(arrival_time=0.0, num_gpus=1, duration=600.0, job_id=1)
    router = QueueDelayRouter()
    assert router.route(job, [backlogged, idle]) == 1
    # A gang already routed (still queued) counts as backlog too.
    queued_gang = Job(arrival_time=0.0, num_gpus=8, duration=72000.0, job_id=61)
    loaded_queue = _view(0, queued=[queued_gang])
    assert router.route(job, [loaded_queue, idle]) == 1


def test_routing_is_replayable_end_to_end():
    trace = small_trace(num_jobs=25, seed=13)
    runs = []
    for _ in range(2):
        engine, _ = make_federation(3, QueueDelayRouter(), trace, nodes_per_shard=4)
        runs.append(engine.run())
    assert runs[0].assignments == runs[1].assignments
    assert completions(runs[0].shard_results[0]) == completions(runs[1].shard_results[0])


# ----------------------------------------------------------------------
# Empty shards end-to-end
# ----------------------------------------------------------------------


class PinRouter(FederationRouter):
    """Test router: always the first feasible shard."""

    name = "pin-first"

    def route(self, job, shards):
        return shards[0].shard_id


def test_empty_shard_runs_and_summarises():
    trace = small_trace(num_jobs=10, seed=21)
    engine, shards = make_federation(2, PinRouter(), trace)
    result = engine.run()
    assert result.jobs_per_shard() == [10, 0]
    empty = result.shard_results[1]
    assert empty.jobs == []
    # The idle shard's clock still advanced in lockstep with routing events.
    assert empty.rounds >= 1
    summary = result.summary()
    assert summary.shards[1].stats.count == 0
    assert summary.shards[1].stats.avg_jct == 0.0
    assert summary.pooled.count == 10
    assert summary.routing_imbalance == pytest.approx(2.0)
    shards[1].cluster_state.check_invariants()


# ----------------------------------------------------------------------
# federation_summary edge cases
# ----------------------------------------------------------------------


def _finished_job(job_id, arrival, jct, gpus=1):
    job = Job(arrival_time=arrival, num_gpus=gpus, duration=jct, job_id=job_id)
    job.completion_time = arrival + jct
    return job


def _record(busy, healthy):
    return RoundRecord(
        round_number=0,
        time=0.0,
        running_jobs=0,
        queued_jobs=0,
        utilization=0.0,
        scheduler_name="fifo",
        admission_name="accept-all",
        busy_capacity=busy,
        healthy_capacity=healthy,
    )


def test_federation_summary_empty_shard_and_pooling():
    jobs_a = [_finished_job(1, 0.0, 100.0), _finished_job(2, 0.0, 300.0)]
    summary = federation_summary(
        shard_jobs=[jobs_a, []],
        shard_round_logs=[[_record(4.0, 8.0)], [_record(0.0, 8.0)]],
        shard_eviction_counts=[1, 0],
    )
    assert isinstance(summary, FederationSummary)
    assert summary.num_shards == 2
    assert summary.jobs_per_shard == (2, 0)
    assert summary.shards[1].stats.count == 0
    assert summary.shards[1].stats.p99_jct == 0.0
    assert summary.pooled.count == 2
    assert summary.pooled.avg_jct == pytest.approx(200.0)
    # Pooled utilisation weighs the idle shard's healthy capacity in.
    assert summary.capacity_weighted_utilization == pytest.approx(4.0 / 16.0)
    assert summary.eviction_count == 1
    assert summary.routing_imbalance == pytest.approx(2.0)
    # Everything serialises to plain JSON types.
    as_dict = summary.as_dict()
    assert as_dict["num_shards"] == 2
    assert len(as_dict["shards"]) == 2


def test_federation_summary_single_job_shard_percentiles():
    summary = federation_summary(
        shard_jobs=[[_finished_job(1, 0.0, 500.0)]],
        shard_round_logs=[[]],
    )
    stats = summary.shards[0].stats
    assert stats.count == 1
    assert stats.median_jct == stats.p95_jct == stats.p99_jct == pytest.approx(500.0)
    assert summary.routing_imbalance == pytest.approx(1.0)


def test_federation_summary_tiny_sample_p99_interpolates():
    jobs = [_finished_job(1, 0.0, 100.0), _finished_job(2, 0.0, 200.0)]
    summary = federation_summary(shard_jobs=[jobs], shard_round_logs=[[]])
    # Two samples: p99 interpolates linearly between them, never exceeds max.
    assert summary.pooled.p99_jct == pytest.approx(percentile([100.0, 200.0], 99))
    assert 100.0 < summary.pooled.p99_jct <= 200.0


def test_federation_summary_no_jobs_at_all():
    summary = federation_summary(shard_jobs=[[], []], shard_round_logs=[[], []])
    assert summary.pooled.count == 0
    assert summary.routing_imbalance == 0.0
    assert summary.capacity_weighted_utilization == 0.0


def test_federation_summary_tracked_ids_restrict_pooled_and_shards():
    jobs_a = [_finished_job(1, 0.0, 100.0)]
    jobs_b = [_finished_job(2, 0.0, 900.0)]
    summary = federation_summary(
        shard_jobs=[jobs_a, jobs_b],
        shard_round_logs=[[], []],
        tracked_ids=[2],
    )
    assert summary.pooled.count == 1
    assert summary.pooled.avg_jct == pytest.approx(900.0)
    # jobs_per_shard counts *routed* jobs regardless of the tracked window;
    # the finished-tracked counts live on the per-shard stats.
    assert summary.jobs_per_shard == (1, 1)
    assert tuple(s.stats.count for s in summary.shards) == (0, 1)


def test_federation_summary_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="one entry per shard"):
        federation_summary(shard_jobs=[[]], shard_round_logs=[[], []])
    with pytest.raises(ValueError, match="one entry per shard"):
        federation_summary(
            shard_jobs=[[]], shard_round_logs=[[]], shard_eviction_counts=[1, 2]
        )
