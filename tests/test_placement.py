"""Gang selection/suspension tests for ``BasePlacementPolicy`` and the view."""

from repro.cluster.builder import build_cluster
from repro.core.abstractions import ScheduleEntry
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.core.mechanisms import SimulatedLauncher
from repro.policies.placement.base import AvailabilityView
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.placement.first_free import FirstFreePlacement
from repro.simulator.overheads import OverheadModel


def make_job(job_id, gpus):
    return Job(arrival_time=0.0, num_gpus=gpus, duration=1000.0, job_id=job_id)


def launch(job, gpu_ids, cluster, job_state):
    launcher = SimulatedLauncher(OverheadModel(scale=0.0))
    launcher.launch(job, gpu_ids, cluster, current_time=0.0)
    assert job_state.get(job.job_id).status is JobStatus.RUNNING


def test_availability_view_tracks_totals_and_take():
    cluster = build_cluster(num_nodes=3, gpus_per_node=4)
    cluster.assign(1, [0, 1])
    view = AvailabilityView(cluster)
    assert view.total_free() == 10
    assert view.node_ids() == [0, 1, 2]
    assert [g.local_gpu_id for g in view.free_on_node(0)] == [2, 3]
    view.take([2, 4, 5, 6, 7])
    assert view.total_free() == 5
    assert view.node_ids() == [0, 2]
    assert view.free_count(1) == 0
    # Suspended jobs' GPUs come back through extra_gpu_ids, ordered locally.
    view2 = AvailabilityView(cluster, extra_gpu_ids=[1, 0])
    assert view2.total_free() == 12
    assert [g.local_gpu_id for g in view2.free_on_node(0)] == [0, 1, 2, 3]


def test_consolidated_placement_prefers_single_node_best_fit():
    cluster = build_cluster(num_nodes=3, gpus_per_node=4)
    cluster.assign(99, [0])  # node 0 has 3 free: the tightest fit for 2 GPUs
    job_state = JobState()
    jobs = [make_job(1, 2)]
    job_state.add_new_jobs(jobs)
    decision = ConsolidatedPlacement().place(
        [ScheduleEntry(job_id=1, gpu_demand=2)], cluster, job_state
    )
    assert decision.to_suspend == []
    assert decision.to_launch[1] == [1, 2]  # best-fit node 0


def test_selection_respects_capacity_and_priority_order():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)  # 8 GPUs
    job_state = JobState()
    jobs = [make_job(1, 6), make_job(2, 4), make_job(3, 2)]
    job_state.add_new_jobs(jobs)
    schedule = [
        ScheduleEntry(job_id=1, gpu_demand=6),
        ScheduleEntry(job_id=2, gpu_demand=4),  # does not fit beside job 1
        ScheduleEntry(job_id=3, gpu_demand=2),  # backfills
    ]
    decision = FirstFreePlacement().place(schedule, cluster, job_state)
    assert sorted(decision.to_launch) == [1, 3]
    assert len(decision.to_launch[1]) == 6
    assert len(decision.to_launch[3]) == 2


def test_unselected_running_job_is_suspended_and_gpus_reused():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    job_state = JobState()
    low = make_job(1, 4)
    high = make_job(2, 8)
    job_state.add_new_jobs([low, high])
    launch(low, [0, 1, 2, 3], cluster, job_state)
    # The policy now prioritises the 8-GPU job only.
    decision = FirstFreePlacement().place(
        [ScheduleEntry(job_id=2, gpu_demand=8)], cluster, job_state
    )
    assert decision.to_suspend == [1]
    assert sorted(decision.to_launch[2]) == list(range(8))


def test_running_job_with_unchanged_demand_keeps_allocation():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    job_state = JobState()
    job = make_job(1, 3)
    job_state.add_new_jobs([job])
    launch(job, [4, 5, 6], cluster, job_state)
    decision = ConsolidatedPlacement().place(
        [ScheduleEntry(job_id=1, gpu_demand=3)], cluster, job_state
    )
    assert decision.to_suspend == []
    assert decision.to_launch[1] == [4, 5, 6]  # lease renewal, same GPUs


def test_changed_demand_forces_suspension_and_reallocation():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    job_state = JobState()
    job = make_job(1, 2)
    job_state.add_new_jobs([job])
    launch(job, [0, 1], cluster, job_state)
    decision = ConsolidatedPlacement().place(
        [ScheduleEntry(job_id=1, gpu_demand=4)], cluster, job_state
    )
    assert decision.to_suspend == [1]
    assert len(decision.to_launch[1]) == 4


def test_failed_nodes_are_excluded_from_placement():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    cluster.mark_node_failed(0)
    job_state = JobState()
    job_state.add_new_jobs([make_job(1, 8)])
    decision = ConsolidatedPlacement().place(
        [ScheduleEntry(job_id=1, gpu_demand=8)], cluster, job_state
    )
    assert decision.to_launch == {}  # only 4 healthy GPUs exist
    job_state.add_new_jobs([make_job(2, 4)])
    decision = ConsolidatedPlacement().place(
        [ScheduleEntry(job_id=2, gpu_demand=4)], cluster, job_state
    )
    assert decision.to_launch[2] == [4, 5, 6, 7]
