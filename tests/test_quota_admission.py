"""Regression tests for the quota-admission livelock fix.

Seed behaviour: a job whose gang exceeds its user's quota sat in the per-user
queue forever; with such a job pending, the simulator's stall detector never
fired and the run burned its whole round budget before erroring out.  The
admission-reject path now fails these jobs at submission.
"""

from repro.cluster.builder import build_cluster
from repro.core.job import Job, JobStatus
from repro.core.job_state import JobState
from repro.policies.admission.quota import UserQuotaAdmission
from repro.policies.scheduling.fifo import FifoScheduling
from repro.simulator.engine import Simulator
from repro.workloads.trace import Trace


def make_job(arrival, gpus, duration=2000.0, user="alice"):
    return Job(arrival_time=arrival, num_gpus=gpus, duration=duration, user=user)


def test_oversize_gang_is_rejected_not_queued():
    policy = UserQuotaAdmission(default_quota=4)
    job_state = JobState()
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    oversize = make_job(0.0, 8)
    accepted = policy.accept([oversize], cluster, job_state)
    assert accepted == []
    assert policy.pending_jobs() == []
    assert oversize.status == JobStatus.FAILED
    assert oversize.metrics["admission_rejected"] == "gang_exceeds_user_quota"
    assert oversize.job_id in policy.rejected_job_ids
    # The job is tracked terminally, so nothing waits on it.
    assert oversize.job_id in job_state
    assert job_state.count_finished() == 1


def test_simulation_terminates_despite_oversize_job():
    """The seed livelock: the run must now finish instead of exhausting rounds."""
    jobs = [make_job(0.0, 8), make_job(0.0, 2, user="bob")]
    sim = Simulator(
        cluster_state=build_cluster(num_nodes=2, gpus_per_node=4),
        jobs=jobs,
        scheduling_policy=FifoScheduling(),
        admission_policy=UserQuotaAdmission(default_quota=4),
        max_rounds=5_000,
    )
    result = sim.run()
    by_id = {j.job_id: j for j in result.jobs}
    assert by_id[jobs[0].job_id].status == JobStatus.FAILED
    assert by_id[jobs[0].job_id].completion_time is None
    assert by_id[jobs[1].job_id].status == JobStatus.COMPLETED


def test_within_quota_jobs_still_queue_and_release():
    """The original quota semantics are preserved for admissible jobs."""
    jobs = [
        make_job(0.0, 4, duration=3000.0),
        make_job(0.0, 4, duration=3000.0),  # waits until the first finishes
        make_job(0.0, 2, user="bob"),
    ]
    sim = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=jobs,
        scheduling_policy=FifoScheduling(),
        admission_policy=UserQuotaAdmission(default_quota=4),
        max_rounds=10_000,
    )
    result = sim.run()
    assert len(result.finished_jobs()) == 3
    first, second = result.jobs[0], result.jobs[1]
    # The second alice job could only start after the first released quota.
    assert second.first_schedule_time >= first.completion_time - sim.manager.round_duration


def test_trace_helper_roundtrip():
    trace = Trace(jobs=[make_job(0.0, 1)])
    assert len(trace.fresh_jobs()) == 1
