"""Event-engine interplay with every resumable-loop surface.

The event core is a skip *executor* inside the round loop, so everything
built on the loop's pausability must behave identically on both engines:

* ``_advance_loop(stop_time)`` pause/resume on a plain simulator;
* federation shards (``run_until``/``submit``/``finish`` driven by the
  serial engine) built on ``engine="events"``;
* the deployment path (:class:`CentralScheduler` composes the simulator);
* trace record -> replay -> diff round-trips, with the engine choice carried
  in the trace header and the recorded event streams bit-identical across
  engines.
"""

import json

import pytest

from repro.cluster.builder import build_cluster
from repro.federation.engine import FederationEngine, build_uniform_shards
from repro.federation.router import make_router
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling import FifoScheduling, SrtfScheduling
from repro.runtime.central_scheduler import CentralScheduler
from repro.simulator.engine import Simulator
from repro.simulator.overheads import OverheadModel
from repro.telemetry.events import NONDETERMINISTIC_KINDS, TraceFormatError
from repro.telemetry.runspec import RunSpec
from repro.trace import main as trace_main
from repro.workloads.philly import generate_philly_trace

ROUND = 300.0


def small_trace(num_jobs=30, seed=13, jobs_per_hour=6.0):
    return generate_philly_trace(
        num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed
    )


def make_sim(trace, engine, **kwargs):
    return Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        placement_policy=ConsolidatedPlacement(),
        round_duration=ROUND,
        engine=engine,
        **kwargs,
    )


def completions(result):
    return {j.job_id: j.completion_time for j in result.jobs}


def assert_identical(first, second):
    assert completions(first) == completions(second)
    assert first.round_log == second.round_log
    assert first.rounds == second.rounds
    assert first.end_time == second.end_time


# ----------------------------------------------------------------------
# Pause/resume on the plain loop
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["rounds", "events"])
def test_paused_and_resumed_loop_matches_uninterrupted_run(engine):
    trace = small_trace()
    uninterrupted = make_sim(trace, engine).run()

    paused = make_sim(trace, engine)
    for stop_time in (2_000.0, 9_000.0, 30_000.0):
        assert paused._advance_loop(stop_time) is False
        assert paused.manager.current_time >= stop_time
    assert paused._advance_loop(None) is True
    assert_identical(uninterrupted, paused.build_result())


def test_pause_points_are_engine_invariant():
    """Both engines paused at the same stop_time stand at the same round."""
    trace = small_trace()
    sims = {engine: make_sim(trace, engine) for engine in ("rounds", "events")}
    for stop_time in (1_500.0, 12_000.0):
        for sim in sims.values():
            assert sim._advance_loop(stop_time) is False
        assert (
            sims["rounds"].manager.round_number
            == sims["events"].manager.round_number
        )
        assert (
            sims["rounds"].manager.current_time
            == sims["events"].manager.current_time
        )
    for sim in sims.values():
        assert sim._advance_loop(None) is True
    assert_identical(sims["rounds"].build_result(), sims["events"].build_result())


# ----------------------------------------------------------------------
# Federation shards on the event engine
# ----------------------------------------------------------------------


def _run_federation(engine, scheduling=FifoScheduling, router_name="round-robin"):
    trace = small_trace(num_jobs=40, seed=7)
    shards = build_uniform_shards(
        2,
        4,
        scheduling,
        ConsolidatedPlacement,
        round_duration=ROUND,
        engine=engine,
    )
    engine_obj = FederationEngine(
        shards,
        make_router(router_name),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    )
    return engine_obj.run()


@pytest.mark.parametrize("scheduling", [FifoScheduling, SrtfScheduling])
def test_federation_shards_event_engine_parity(scheduling):
    rounds = _run_federation("rounds", scheduling=scheduling)
    events = _run_federation("events", scheduling=scheduling)
    assert rounds.assignments == events.assignments
    for rounds_shard, events_shard in zip(rounds.shard_results, events.shard_results):
        assert_identical(rounds_shard, events_shard)


# ----------------------------------------------------------------------
# Deployment path (CentralScheduler) on the event engine
# ----------------------------------------------------------------------


def test_central_scheduler_event_engine_parity():
    trace = small_trace(num_jobs=25, seed=21)
    results = {}
    for engine in ("rounds", "events"):
        scheduler = CentralScheduler(
            cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
            jobs=trace.fresh_jobs(),
            scheduling_policy=FifoScheduling(),
            placement_policy=ConsolidatedPlacement(),
            round_duration=ROUND,
            overhead_model=OverheadModel(),
            engine=engine,
        )
        results[engine] = scheduler.run()
        assert scheduler.leaked_leases() == 0
    assert_identical(results["rounds"], results["events"])


# ----------------------------------------------------------------------
# Trace record / replay / diff carries the engine
# ----------------------------------------------------------------------


def test_runspec_engine_round_trip_and_default():
    spec = RunSpec(engine="events")
    assert RunSpec.from_dict(spec.as_dict()) == spec
    # Traces recorded before the engine switch existed replay on the oracle.
    legacy = {key: value for key, value in spec.as_dict().items() if key != "engine"}
    assert RunSpec.from_dict(legacy).engine == "rounds"
    with pytest.raises(TraceFormatError, match="unknown engine"):
        RunSpec(engine="instant")


@pytest.mark.parametrize("mode_args", [
    [],
    ["--mode", "runtime"],
    ["--mode", "federation", "--shards", "2"],
    ["--scenario", "steady", "--scenario-smoke"],
])
def test_trace_record_replay_diff_event_engine(tmp_path, mode_args):
    spec_args = ["--jobs", "12", "--nodes", "4", "--seed", "11", *mode_args]
    events_path = str(tmp_path / "events.jsonl")
    rounds_path = str(tmp_path / "rounds.jsonl")
    assert trace_main(
        ["record", *spec_args, "--engine", "events", "--out", events_path]
    ) == 0
    assert trace_main(
        ["record", *spec_args, "--engine", "rounds", "--out", rounds_path]
    ) == 0

    # The replay re-drives each trace with the engine from its own header and
    # must reproduce the stream bit-identically.
    assert trace_main(["replay", events_path]) == 0
    assert trace_main(["diff", events_path, events_path]) == 0

    # Cross-engine: the recorded *event streams* (everything after the
    # header, which embeds the spec and so legitimately differs) must be
    # bit-identical -- telemetry is a parity surface, not just completions.
    # Wall-clock kinds (timing, supervisor) are excluded exactly as the
    # repo's own `trace diff` excludes them.
    def stream(path):
        with open(path) as handle:
            lines = handle.readlines()[1:]
        return [
            line
            for line in lines
            if json.loads(line)["kind"] not in NONDETERMINISTIC_KINDS
        ]

    assert stream(events_path) == stream(rounds_path)

    with open(events_path) as handle:
        header = json.loads(handle.readline())
    assert header["spec"]["engine"] == "events"
