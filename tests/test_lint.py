"""Per-rule fixture tests for the invariant linter (``repro.analysis``).

Every rule id gets a bad-snippet -> expected-finding case and a good-snippet
-> clean case.  Fixtures are linted as in-memory sources under *virtual*
paths (``src/repro/simulator/fake.py`` lands in simulation scope) so the bad
code never exists on disk where the CI lint job would flag it.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, lint_source, lint_sources, rule_catalog
from repro.analysis.baseline import Baseline
from repro.analysis.manifest import LintManifest, default_manifest

REPO_ROOT = Path(__file__).resolve().parents[1]

SIM = "src/repro/simulator/fixture.py"
NONSIM = "src/repro/bench/fixture.py"


def rules_of(findings):
    return [f.rule for f in findings]


def lint(code, path=SIM, **kwargs):
    return lint_source(textwrap.dedent(code), virtual_path=path, **kwargs)


# ---------------------------------------------------------------------------
# D101: unseeded randomness
# ---------------------------------------------------------------------------


def test_d101_module_level_random_call():
    findings = lint(
        """
        import random

        def jitter():
            return random.random()
        """
    )
    assert rules_of(findings) == ["D101"]
    assert findings[0].line == 5


def test_d101_unseeded_random_constructor():
    findings = lint(
        """
        import random

        rng = random.Random()
        """
    )
    assert rules_of(findings) == ["D101"]


def test_d101_seeded_rng_is_clean():
    findings = lint(
        """
        import random

        rng = random.Random(1234)

        def jitter():
            return rng.random()
        """
    )
    assert findings == []


# ---------------------------------------------------------------------------
# D102: wall-clock reads on the simulation path
# ---------------------------------------------------------------------------

WALLCLOCK_SNIPPET = """
import time

def now():
    return time.time()
"""


def test_d102_wallclock_in_simulation_package():
    findings = lint(WALLCLOCK_SNIPPET)
    assert rules_of(findings) == ["D102"]


def test_d102_wallclock_outside_simulation_path_is_clean():
    assert lint(WALLCLOCK_SNIPPET, path=NONSIM) == []


def test_d102_manifest_allowlist():
    manifest = LintManifest(
        wallclock_allowlist={
            ("repro/simulator/fixture.py", "D102"): frozenset({"time.time"})
        }
    )
    assert lint(WALLCLOCK_SNIPPET, manifest=manifest) == []
    # The allowlist names exact callees: a different clock still fires.
    findings = lint(
        """
        import time

        def now():
            return time.monotonic()
        """,
        manifest=manifest,
    )
    assert rules_of(findings) == ["D102"]


def test_d102_datetime_now():
    findings = lint(
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
    )
    assert rules_of(findings) == ["D102"]


# ---------------------------------------------------------------------------
# D103: environment reads on the simulation path
# ---------------------------------------------------------------------------


def test_d103_environ_and_getenv():
    findings = lint(
        """
        import os

        def knobs():
            a = os.environ["FAST"]
            b = os.getenv("SLOW")
            return a, b
        """
    )
    assert rules_of(findings) == ["D103", "D103"]


def test_d103_outside_simulation_path_is_clean():
    findings = lint(
        """
        import os

        def knobs():
            return os.getenv("SLOW")
        """,
        path=NONSIM,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# D104: set iteration feeding ordering-sensitive sinks
# ---------------------------------------------------------------------------


def test_d104_local_set_iteration():
    findings = lint(
        """
        def emit(ids):
            pending = set(ids)
            out = []
            for job_id in pending:
                out.append(job_id)
            return out
        """
    )
    assert rules_of(findings) == ["D104"]
    assert findings[0].line == 5


def test_d104_sorted_iteration_is_clean():
    findings = lint(
        """
        def emit(ids):
            pending = set(ids)
            return [job_id for job_id in sorted(pending)]
        """
    )
    assert findings == []


def test_d104_comprehension_feeding_sorted_is_clean():
    findings = lint(
        """
        def emit(a, b):
            return sorted(x for x in set(a) | set(b))
        """
    )
    assert findings == []


def test_d104_annotated_dict_of_set_attribute():
    findings = lint(
        """
        from typing import Dict, Set

        class Index:
            def __init__(self):
                self._by_node: Dict[int, Set[int]] = {}

            def release(self, node_id):
                out = []
                for gpu_id in self._by_node[node_id]:
                    out.append(gpu_id)
                return out
        """
    )
    assert rules_of(findings) == ["D104"]


def test_d104_list_call_on_set():
    findings = lint(
        """
        def emit(ids):
            return list(set(ids))
        """
    )
    assert rules_of(findings) == ["D104"]


# ---------------------------------------------------------------------------
# D105: id() in simulation code
# ---------------------------------------------------------------------------


def test_d105_id_call():
    findings = lint(
        """
        def key(job):
            return id(job)
        """
    )
    assert rules_of(findings) == ["D105"]


def test_d105_outside_simulation_path_is_clean():
    assert lint("def key(job):\n    return id(job)\n", path=NONSIM) == []


# ---------------------------------------------------------------------------
# P101 / P102: picklability of pipe-crossing classes
# ---------------------------------------------------------------------------

JOB_PATH = "src/repro/core/job.py"


def test_p101_lambda_stored_without_state_pair():
    findings = lint(
        """
        class Job:
            def __init__(self):
                self.on_done = lambda: None
        """,
        path=JOB_PATH,
    )
    assert rules_of(findings) == ["P101"]


def test_p101_lock_without_state_pair():
    findings = lint(
        """
        import threading

        class Job:
            def __init__(self):
                self._lock = threading.Lock()
        """,
        path=JOB_PATH,
    )
    assert rules_of(findings) == ["P101"]


def test_p101_state_pair_legalises_transients():
    findings = lint(
        """
        import weakref

        class Job:
            def __init__(self, observer):
                self._ref = weakref.ref(observer)

            def __getstate__(self):
                state = dict(self.__dict__)
                state.pop("_ref")
                return state

            def __setstate__(self, state):
                self.__dict__.update(state)
                self._ref = None
        """,
        path=JOB_PATH,
    )
    assert findings == []


def test_p101_transient_sort_lambda_is_clean():
    findings = lint(
        """
        class Job:
            def order(self, gangs):
                gangs.sort(key=lambda g: g.job_id)
                return gangs
        """,
        path=JOB_PATH,
    )
    assert findings == []


def test_p101_ignores_classes_outside_registry():
    findings = lint(
        """
        class Helper:
            def __init__(self):
                self.on_done = lambda: None
        """,
        path=JOB_PATH,
    )
    assert findings == []


def test_p102_half_state_pair():
    findings = lint(
        """
        class Job:
            def __getstate__(self):
                return dict(self.__dict__)
        """,
        path=JOB_PATH,
    )
    assert rules_of(findings) == ["P102"]


# ---------------------------------------------------------------------------
# C101 / C102 / C103: policy contract conformance
# ---------------------------------------------------------------------------

POLICY_PATH = "src/repro/policies/scheduling/fixture.py"


def test_c101_implicit_contract():
    findings = lint(
        """
        from repro.core.abstractions import SchedulingPolicy

        class MysteryScheduling(SchedulingPolicy):
            name = "mystery"

            def schedule(self, job_state, cluster_state):
                return []
        """,
        path=POLICY_PATH,
    )
    assert "C101" in rules_of(findings)


def test_c101_explicit_flag_is_clean():
    findings = lint(
        """
        from repro.core.abstractions import SchedulingPolicy

        class MysteryScheduling(SchedulingPolicy):
            name = "mystery"
            steady_state_safe = False

            def schedule(self, job_state, cluster_state):
                return []
        """,
        path=POLICY_PATH,
    )
    assert "C101" not in rules_of(findings)


def test_c101_next_event_override_is_clean():
    findings = lint(
        """
        from repro.core.abstractions import SchedulingPolicy

        class MysteryScheduling(SchedulingPolicy):
            name = "mystery"

            def schedule(self, job_state, cluster_state):
                return []

            def next_policy_event_time(self, now, job_state, cluster_state):
                return None
        """,
        path=POLICY_PATH,
    )
    assert "C101" not in rules_of(findings)


def test_c102_steady_state_mutation():
    findings = lint(
        """
        from repro.core.abstractions import SchedulingPolicy

        class CachedScheduling(SchedulingPolicy):
            name = "cached"
            steady_state_safe = True

            def schedule(self, job_state, cluster_state):
                self._last = job_state.count_active()
                return []
        """,
        path=POLICY_PATH,
    )
    assert "C102" in rules_of(findings)
    c102 = [f for f in findings if f.rule == "C102"][0]
    assert "self._last" in c102.message


def test_c102_pure_steady_state_is_clean():
    findings = lint(
        """
        from repro.core.abstractions import SchedulingPolicy

        class CachedScheduling(SchedulingPolicy):
            name = "cached"
            steady_state_safe = True

            def schedule(self, job_state, cluster_state):
                return [j.job_id for j in job_state.runnable_jobs()]
        """,
        path=POLICY_PATH,
    )
    assert "C102" not in rules_of(findings)


def test_c103_undocumented_policy(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "policies.md").write_text(
        "| DocumentedScheduling | documented |\n", encoding="utf-8"
    )
    source = textwrap.dedent(
        """
        from repro.core.abstractions import SchedulingPolicy

        class GhostScheduling(SchedulingPolicy):
            name = "ghost"
            steady_state_safe = False

            def schedule(self, job_state, cluster_state):
                return []
        """
    )
    result = lint_sources({POLICY_PATH: source}, root=tmp_path)
    assert "C103" in rules_of(result.findings)

    documented = source.replace("GhostScheduling", "DocumentedScheduling")
    result = lint_sources({POLICY_PATH: documented}, root=tmp_path)
    assert "C103" not in rules_of(result.findings)


# ---------------------------------------------------------------------------
# H101 / H102: hot-path hygiene
# ---------------------------------------------------------------------------


def test_h101_on_progress_override():
    findings = lint(
        """
        class EagerObserver:
            def on_progress(self, job, field, old, new):
                self.seen = (job, field)
        """,
        path="src/repro/telemetry/fixture.py",
    )
    assert rules_of(findings) == ["H101"]


def test_h101_documented_exception_is_clean():
    findings = lint(
        """
        class JobStateObserver:
            def on_progress(self, job, field, old, new):
                pass
        """,
        path="src/repro/core/job_state.py",
    )
    assert findings == []


def test_h102_marked_function_with_print():
    findings = lint(
        """
        class Model:
            def advance(self, job):  # hot-path
                print("advancing", job)
                return job
        """,
        path=NONSIM,
    )
    assert rules_of(findings) == ["H102"]


def test_h102_manifest_listed_function():
    manifest = LintManifest(
        hot_path_functions=frozenset({"repro/bench/fixture.py::Model.advance"})
    )
    findings = lint(
        """
        class Model:
            def advance(self, job):
                self.recorder.emit("round", 0.0, {})
                return job
        """,
        path=NONSIM,
        manifest=manifest,
    )
    assert rules_of(findings) == ["H102"]


def test_h102_unmarked_function_is_clean():
    findings = lint(
        """
        class Model:
            def advance(self, job):
                print("fine here")
                return job
        """,
        path=NONSIM,
    )
    assert findings == []


# ---------------------------------------------------------------------------
# L100 / L101: pipeline pseudo-rules
# ---------------------------------------------------------------------------


def test_l100_syntax_error():
    findings = lint("def broken(:\n    pass\n", path=NONSIM)
    assert rules_of(findings) == ["L100"]


def test_l101_unused_suppression():
    findings = lint(
        """
        x = 1  # repro-lint: disable=D101
        """,
        path=NONSIM,
    )
    assert rules_of(findings) == ["L101"]


def test_suppression_silences_finding_on_its_line():
    findings = lint(
        """
        import random

        def jitter():
            return random.random()  # repro-lint: disable=D101
        """,
        path=NONSIM,
    )
    assert findings == []


def test_suppression_only_covers_named_rule():
    findings = lint(
        """
        import random

        def jitter():
            return random.random()  # repro-lint: disable=D104
        """,
        path=NONSIM,
    )
    # The D101 still fires and the D104 marker is unused.
    assert sorted(rules_of(findings)) == ["D101", "L101"]


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def test_baseline_grandfathers_by_content(tmp_path):
    source = textwrap.dedent(
        """
        import random

        def jitter():
            return random.random()
        """
    )
    dirty = lint_sources({NONSIM: source}, root=tmp_path)
    assert rules_of(dirty.findings) == ["D101"]

    line_text = source.splitlines()[dirty.findings[0].line - 1]
    baseline = Baseline.from_findings([(dirty.findings[0], line_text)])
    clean = lint_sources({NONSIM: source}, root=tmp_path, baseline=baseline)
    assert clean.findings == []
    assert clean.baselined == 1

    # Baselines key on line *content*: edits above must not resurrect it.
    shifted = "ARRIVALS = 7\n" + source
    still_clean = lint_sources({NONSIM: shifted}, root=tmp_path, baseline=baseline)
    assert still_clean.findings == []


def test_baseline_roundtrip(tmp_path):
    baseline = Baseline({("D101", "src/x.py", "random.random()")})
    path = tmp_path / "baseline.json"
    baseline.dump(path)
    assert Baseline.load(path).keys == baseline.keys


def test_checked_in_baseline_is_empty():
    data = json.loads(
        (REPO_ROOT / "tools" / "lint_baseline.json").read_text(encoding="utf-8")
    )
    assert data["findings"] == []


# ---------------------------------------------------------------------------
# Registry / catalog
# ---------------------------------------------------------------------------


def test_rule_ids_unique_and_catalogued():
    ids = [cls.rule_id for cls in ALL_RULES]
    assert len(ids) == len(set(ids))
    catalog = rule_catalog()
    for rule_id in ids + ["L100", "L101"]:
        assert rule_id in catalog
        assert catalog[rule_id]


def test_every_rule_family_represented():
    families = {cls.rule_id[0] for cls in ALL_RULES}
    assert {"D", "P", "C", "H"} <= families


# ---------------------------------------------------------------------------
# Self-lint and CLI
# ---------------------------------------------------------------------------


def _run_cli(*args, cwd=REPO_ROOT):
    env_src = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


def test_self_lint_src_and_tests_clean():
    """The flagship gate: the merged tree lints clean with no stale markers."""
    proc = _run_cli("src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout
    # Zero unused suppressions: L101 would be a finding and fail above.


def test_cli_json_output_and_exit_code(tmp_path):
    bad = tmp_path / "src" / "repro" / "simulator"
    bad.mkdir(parents=True)
    (bad / "__init__.py").write_text("", encoding="utf-8")
    (bad / "noisy.py").write_text(
        "import random\nVALUE = random.random()\n", encoding="utf-8"
    )
    proc = _run_cli("src", "--format", "json", "--root", str(tmp_path), cwd=tmp_path)
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert [f["rule"] for f in report["findings"]] == ["D101"]
    assert report["findings"][0]["path"].endswith("noisy.py")


def test_cli_help_smoke():
    proc = _run_cli("--help")
    assert proc.returncode == 0
    assert "repro.lint" in proc.stdout


# ---------------------------------------------------------------------------
# --diff mode (rename/delete edge cases)
# ---------------------------------------------------------------------------


def _git(repo, *args):
    subprocess.run(
        ["git", *args],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.com",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.com",
            "HOME": str(repo),
        },
    )


@pytest.fixture()
def diff_repo(tmp_path):
    repo = tmp_path / "repo"
    pkg = repo / "src" / "repro" / "simulator"
    pkg.mkdir(parents=True)
    _git(repo, "init", "-q")
    (pkg / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    (pkg / "doomed.py").write_text("import random\nX = random.random()\n", encoding="utf-8")
    (pkg / "mover.py").write_text("import random\nY = random.random()\n", encoding="utf-8")
    _git(repo, "add", "-A")
    _git(repo, "commit", "-q", "-m", "base")
    return repo


def test_diff_mode_lints_only_changed_files(diff_repo):
    (diff_repo / "src" / "repro" / "simulator" / "clean.py").write_text(
        "import random\nZ = random.random()\n", encoding="utf-8"
    )
    proc = _run_cli("src", "--diff", "HEAD", "--root", str(diff_repo), cwd=diff_repo)
    assert proc.returncode == 1
    # Only the changed file is linted: doomed.py/mover.py findings absent.
    assert "clean.py" in proc.stdout
    assert "doomed.py" not in proc.stdout


def test_diff_mode_skips_deletions_and_follows_renames(diff_repo):
    sim = diff_repo / "src" / "repro" / "simulator"
    (sim / "doomed.py").unlink()
    (sim / "mover.py").rename(sim / "arrived.py")
    _git(diff_repo, "add", "-A")
    proc = _run_cli("src", "--diff", "HEAD", "--root", str(diff_repo), cwd=diff_repo)
    # The deleted file must not crash the run; the renamed file is linted
    # under its new path.
    assert proc.returncode == 1
    assert "arrived.py" in proc.stdout
    assert "doomed.py" not in proc.stdout


def test_diff_mode_includes_untracked_files(diff_repo):
    (diff_repo / "src" / "repro" / "simulator" / "fresh.py").write_text(
        "import random\nW = random.random()\n", encoding="utf-8"
    )
    proc = _run_cli("src", "--diff", "HEAD", "--root", str(diff_repo), cwd=diff_repo)
    assert proc.returncode == 1
    assert "fresh.py" in proc.stdout


def test_diff_mode_no_changes_is_clean(diff_repo):
    proc = _run_cli("src", "--diff", "HEAD", "--root", str(diff_repo), cwd=diff_repo)
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ---------------------------------------------------------------------------
# Manifest sanity against the real tree
# ---------------------------------------------------------------------------


def test_manifest_paths_exist():
    """Manifest entries must point at real files, or they are dead config."""
    manifest = default_manifest()
    for (suffix, _rule) in manifest.wallclock_allowlist:
        assert (REPO_ROOT / "src" / suffix).exists(), suffix
    for suffix in set(manifest.pickle_registry.values()):
        assert (REPO_ROOT / "src" / suffix).exists(), suffix
    for entry in manifest.hot_path_functions:
        assert (REPO_ROOT / "src" / entry.split("::", 1)[0]).exists(), entry
    for suffix in manifest.on_progress_allowed:
        assert (REPO_ROOT / "src" / suffix).exists(), suffix
    assert (REPO_ROOT / manifest.policy_doc_path).exists()
