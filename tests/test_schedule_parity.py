"""Schedule-parity regression tests for the event-skipping fast-forward.

The fast-forward must be a pure performance feature: one seeded workload run
through FIFO + consolidated placement with the flag off and on must produce
identical per-job completion times and identical round logs.  A second test
proves the same against the seed-cost legacy implementations (full-scan state,
every round executed), which is the pre-refactor baseline the benchmark
compares against.
"""

import pytest

from repro.bench.legacy import LegacySimulator
from repro.cluster.builder import build_cluster
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.srtf import SrtfScheduling
from repro.simulator.engine import Simulator
from repro.workloads.philly import generate_philly_trace


def run(trace, simulator_cls=Simulator, scheduling_factory=FifoScheduling, **kwargs):
    sim = simulator_cls(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=scheduling_factory(),
        placement_policy=ConsolidatedPlacement(),
        **kwargs,
    )
    return sim.run()


def assert_identical(first, second):
    assert first.rounds == second.rounds
    first_completions = {j.job_id: j.completion_time for j in first.jobs}
    second_completions = {j.job_id: j.completion_time for j in second.jobs}
    assert first_completions == second_completions
    assert first.round_log == second.round_log
    assert first.end_time == second.end_time


@pytest.fixture(scope="module")
def trace():
    return generate_philly_trace(num_jobs=40, jobs_per_hour=5.0, seed=99)


def test_fast_forward_flag_preserves_schedule(trace):
    with_skip = run(trace, fast_forward=True)
    without_skip = run(trace, fast_forward=False)
    assert_identical(without_skip, with_skip)
    assert len(with_skip.finished_jobs()) == 40


def test_fast_forward_matches_legacy_baseline(trace):
    """The indexed, event-skipping core replays the seed's schedule exactly."""
    legacy = run(trace, simulator_cls=LegacySimulator)
    indexed = run(trace, fast_forward=True)
    assert_identical(legacy, indexed)


def test_fast_forward_parity_under_srtf(trace):
    """SRTF opts into steady-state skipping; parity must hold there too."""
    with_skip = run(trace, scheduling_factory=SrtfScheduling, fast_forward=True)
    without_skip = run(trace, scheduling_factory=SrtfScheduling, fast_forward=False)
    assert_identical(without_skip, with_skip)


def test_fast_forward_disabled_for_unsafe_policies(trace):
    """Policies that opt out must force every round to execute."""
    from repro.policies.admission.accept_all import AcceptAll
    from repro.synthesizer.auto_scheduler import AutoSchedulerSynthesizer

    synth = AutoSchedulerSynthesizer.from_grid(
        [("fifo", FifoScheduling)], [("all", AcceptAll)], evaluate_every=10, horizon_rounds=4
    )
    sim = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=synth,
        admission_policy=synth,
        fast_forward=True,
    )
    assert sim.fast_forward is False


def test_unmigrated_cluster_manager_disables_fast_forward(trace):
    """A manager overriding update() but not next_event_time cannot be skipped."""
    from repro.core.abstractions import ClusterManager

    class Sneaky(ClusterManager):
        def update(self, cluster_state, current_time):
            return []

    sim = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        cluster_manager=Sneaky(),
        fast_forward=True,
    )
    assert sim.fast_forward is False

    class Migrated(Sneaky):
        def next_event_time(self, current_time):
            return None

    sim = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=FifoScheduling(),
        cluster_manager=Migrated(),
        fast_forward=True,
    )
    assert sim.fast_forward is True


def test_admission_with_per_round_side_effects_is_never_skipped(trace):
    """steady_state_safe=False on an admission policy must disable all skipping,
    including during fully idle stretches (the documented opt-out contract)."""
    from repro.policies.admission.accept_all import AcceptAll

    class CountingAdmission(AcceptAll):
        steady_state_safe = False

        def __init__(self):
            super().__init__()
            self.calls = 0

        def accept(self, new_jobs, cluster_state, job_state):
            self.calls += 1
            return super().accept(new_jobs, cluster_state, job_state)

    with_skip_policy = CountingAdmission()
    with_skip = run(trace, admission_policy=with_skip_policy, fast_forward=True)
    without_skip_policy = CountingAdmission()
    without_skip = run(trace, admission_policy=without_skip_policy, fast_forward=False)
    assert_identical(without_skip, with_skip)
    assert with_skip_policy.calls == without_skip_policy.calls


def test_fast_forward_parity_with_scheduled_cluster_events(trace):
    """Event skipping must stop exactly at failures/recoveries a manager schedules."""
    from repro.core.abstractions import ClusterManager

    class OneFailure(ClusterManager):
        def __init__(self):
            self.failed = False
            self.recovered = False

        def update(self, cluster_state, current_time):
            if not self.failed and current_time >= 50_000:
                self.failed = True
                return cluster_state.mark_node_failed(2)
            if not self.recovered and current_time >= 150_000:
                self.recovered = True
                cluster_state.mark_node_recovered(2)
            return []

        def next_event_time(self, current_time):
            if not self.failed:
                return 50_000.0
            if not self.recovered:
                return 150_000.0
            return None

    with_skip = run(trace, cluster_manager=OneFailure(), fast_forward=True)
    without_skip = run(trace, cluster_manager=OneFailure(), fast_forward=False)
    assert_identical(without_skip, with_skip)
