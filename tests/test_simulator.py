"""End-to-end determinism and correctness tests for the ``Simulator``."""

import pytest

from repro.cluster.builder import build_cluster
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.las import LasScheduling
from repro.policies.admission.threshold import ThresholdAdmission
from repro.simulator.engine import Simulator
from repro.workloads.philly import generate_philly_trace


def run_once(trace, scheduling_factory=FifoScheduling, **kwargs):
    sim = Simulator(
        cluster_state=build_cluster(num_nodes=4, gpus_per_node=4),
        jobs=trace.fresh_jobs(),
        scheduling_policy=scheduling_factory(),
        placement_policy=ConsolidatedPlacement(),
        **kwargs,
    )
    result = sim.run()
    sim.cluster_state.check_invariants()
    sim.job_state.check_invariants()
    return result


def test_simulation_is_deterministic():
    trace = generate_philly_trace(num_jobs=30, jobs_per_hour=6.0, seed=13)
    first = run_once(trace)
    second = run_once(trace)
    assert first.rounds == second.rounds
    assert {j.job_id: j.completion_time for j in first.jobs} == {
        j.job_id: j.completion_time for j in second.jobs
    }
    assert first.round_log == second.round_log


def test_all_tracked_jobs_finish_and_metrics_are_sane():
    trace = generate_philly_trace(num_jobs=30, jobs_per_hour=6.0, seed=13)
    result = run_once(trace)
    finished = result.finished_jobs()
    assert len(finished) == 30
    assert all(j.completion_time is not None for j in finished)
    assert all(j.completion_time >= j.arrival_time for j in finished)
    assert result.avg_jct() > 0
    assert 0.0 < result.completion_fraction() <= 1.0
    assert result.round_log, "round log must not be empty"
    # Round numbers in the log are strictly increasing and times follow rounds.
    numbers = [r.round_number for r in result.round_log]
    assert numbers == sorted(numbers) and len(set(numbers)) == len(numbers)


def test_admission_policy_composition_runs_to_completion():
    trace = generate_philly_trace(num_jobs=30, jobs_per_hour=8.0, seed=5)
    result = run_once(
        trace,
        scheduling_factory=LasScheduling,
        admission_policy=ThresholdAdmission(threshold_factor=1.2),
    )
    assert len(result.finished_jobs()) == 30


def test_max_rounds_guard_raises():
    from repro.core.exceptions import SimulationError

    trace = generate_philly_trace(num_jobs=30, jobs_per_hour=6.0, seed=13)
    with pytest.raises(SimulationError):
        run_once(trace, max_rounds=3)
