"""Supervised federation: checkpoint/restart recovery, degradation, taxonomy.

The contract under test is the robustness tentpole (``docs/robustness.md``):
a SIGKILLed, hung, or silent shard worker is detected, respawned with
backoff, and replayed from its last checkpoint -- and the recovered run is
**bit-identical** to a fault-free one.  Degradation (restarts exhausted)
must conserve jobs: every job either finishes on a surviving shard or is
counted lost; none vanish silently.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.exceptions import ConfigurationError, SimulationError
from repro.federation import (
    FatalWorkerError,
    FederationEngine,
    FederationWorkerError,
    ParallelFederationEngine,
    RetryableWorkerError,
    SupervisorConfig,
    UniformShardFactory,
    WorkerKillPlan,
)
from repro.federation.parallel import WorkerPoolBackend
from repro.federation.router import make_router
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling import FifoScheduling
from repro.workloads.philly import generate_philly_trace

ROUND = 300.0


def small_trace(num_jobs=40, seed=7, jobs_per_hour=6.0):
    return generate_philly_trace(
        num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed
    )


def bench_factory(nodes_per_shard=4):
    return UniformShardFactory(
        nodes_per_shard=nodes_per_shard,
        scheduling_factory=FifoScheduling,
        placement_factory=ConsolidatedPlacement,
        round_duration=ROUND,
    )


def run_serial(trace, num_shards=2):
    return FederationEngine(
        bench_factory().build_all(num_shards),
        make_router("queue-delay"),
        trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
    ).run()


def run_supervised(trace, num_shards=2, workers=2, **kwargs):
    return ParallelFederationEngine(
        factory=bench_factory(),
        num_shards=num_shards,
        router=make_router("queue-delay"),
        jobs=trace.fresh_jobs(),
        tracked_job_ids=trace.tracked_ids(),
        workers=workers,
        **kwargs,
    ).run()


def supervisor(**overrides):
    config = dict(checkpoint_interval=3, backoff_base_s=0.01, backoff_max_s=0.05)
    config.update(overrides)
    return SupervisorConfig(**config)


def completions(result):
    return {j.job_id: j.completion_time for j in result.jobs}


def assert_bit_parity(serial, recovered):
    assert serial.assignments == recovered.assignments
    for serial_shard, shard in zip(serial.shard_results, recovered.shard_results):
        assert completions(serial_shard) == completions(shard)
        assert serial_shard.round_log == shard.round_log
        assert serial_shard.rounds == shard.rounds


# ----------------------------------------------------------------------
# Kill-one-worker recovery parity (the tentpole gate)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mp_context", ["fork", "spawn"])
@pytest.mark.parametrize("when", ["before", "after"])
def test_sigkill_mid_advance_recovers_bit_identical(mp_context, when):
    trace = small_trace()
    serial = run_serial(trace)
    recovered = run_supervised(
        trace,
        mp_context=mp_context,
        supervisor=supervisor(),
        kill_plan=WorkerKillPlan(kills=((2, 0),), when=when),
    )
    assert_bit_parity(serial, recovered)
    stats = recovered.fault_stats
    assert stats.worker_restarts == 1
    assert stats.checkpoints >= 1


def test_kill_before_first_checkpoint_replays_from_genesis():
    trace = small_trace()
    serial = run_serial(trace)
    recovered = run_supervised(
        trace,
        supervisor=supervisor(checkpoint_interval=1000),
        kill_plan=WorkerKillPlan(kills=((4, 1),), when="before"),
    )
    assert_bit_parity(serial, recovered)
    stats = recovered.fault_stats
    assert stats.worker_restarts == 1
    assert stats.checkpoints == 0
    assert stats.replayed_commands >= 4


def test_two_kills_same_worker_recover():
    trace = small_trace(num_jobs=30)
    serial = run_serial(trace)
    recovered = run_supervised(
        trace,
        supervisor=supervisor(),
        kill_plan=WorkerKillPlan(kills=((1, 0), (5, 0)), when="before"),
    )
    assert_bit_parity(serial, recovered)
    assert recovered.fault_stats.worker_restarts == 2


# ----------------------------------------------------------------------
# Hung and silent workers (collect timeout, heartbeat timeout)
# ----------------------------------------------------------------------


def _first_boundary(trace):
    return trace.fresh_jobs()[0].arrival_time + ROUND


def test_hung_worker_unsupervised_raises_with_context():
    backend = WorkerPoolBackend(
        bench_factory(), num_shards=2, workers=2, collect_timeout_s=0.5
    )
    try:
        backend._conns[0].send(("hang", 30.0))
        with pytest.raises(RetryableWorkerError, match="collect timeout") as excinfo:
            backend.advance(ROUND)
        message = str(excinfo.value)
        assert "shards [0]" in message
        assert "pid" in message
        assert "phase" in message
    finally:
        backend.close()


def test_hung_worker_supervised_recovers():
    backend = WorkerPoolBackend(
        bench_factory(),
        num_shards=2,
        workers=2,
        collect_timeout_s=0.5,
        supervisor=supervisor(),
    )
    try:
        backend._conns[0].send(("hang", 30.0))
        summaries = backend.advance(ROUND)
        assert len(summaries) == 2
        assert backend.fault_stats().worker_restarts == 1
    finally:
        backend.close()


def test_silent_worker_detected_by_heartbeat_timeout():
    backend = WorkerPoolBackend(
        bench_factory(),
        num_shards=2,
        workers=2,
        supervisor=supervisor(
            heartbeat_interval_s=0.05, heartbeat_timeout_s=0.5
        ),
    )
    try:
        os.kill(backend._procs[0].pid, signal.SIGSTOP)
        summaries = backend.advance(ROUND)
        assert len(summaries) == 2
        assert backend.fault_stats().worker_restarts == 1
    finally:
        backend.close()


def test_unsupervised_kill_keeps_historical_error_shape():
    backend = WorkerPoolBackend(bench_factory(), num_shards=2, workers=2)
    try:
        os.kill(backend._procs[1].pid, signal.SIGKILL)
        with pytest.raises(SimulationError, match="died|closed its pipe"):
            backend.advance(ROUND)
    finally:
        backend.close()


# ----------------------------------------------------------------------
# In-flight submissions (the fire-and-forget fix)
# ----------------------------------------------------------------------


def test_submit_to_freshly_killed_worker_is_not_lost():
    trace = small_trace(num_jobs=4)
    jobs = trace.fresh_jobs()
    first = jobs[0]
    backend = WorkerPoolBackend(
        bench_factory(),
        num_shards=2,
        workers=2,
        supervisor=supervisor(checkpoint_interval=1000),
    )
    try:
        backend.advance(first.arrival_time)
        backend.submit(0, first)
        os.kill(backend._procs[0].pid, signal.SIGKILL)
        # Recovery replays the submit from the command log; the job must run
        # to completion on the respawned shard as if nothing happened.
        backend.advance(first.arrival_time + first.duration + 5 * ROUND)
        results = backend.finish()
        assert first.job_id in {j.job_id for j in results[0].jobs}
        assert backend.fault_stats().worker_restarts == 1
    finally:
        backend.close()


# ----------------------------------------------------------------------
# Degradation: restarts exhausted, jobs conserved
# ----------------------------------------------------------------------


def test_degrade_marks_shard_dead_and_conserves_jobs():
    trace = small_trace()
    num_jobs = len(trace.fresh_jobs())
    degraded = run_supervised(
        trace,
        supervisor=supervisor(max_restarts=0, on_unrecoverable="degrade"),
        kill_plan=WorkerKillPlan(kills=((4, 1),), when="before"),
    )
    stats = degraded.fault_stats
    assert stats.dead_shards == 1
    finished = sum(len(shard.jobs) for shard in degraded.shard_results)
    assert finished + stats.lost_jobs == num_jobs
    # Routing accounting stays conserved too: every job is attributed to
    # exactly one shard (re-routes move the attribution to the survivor).
    assert sum(degraded.jobs_per_shard()) == num_jobs


def test_exhausted_restarts_raise_fatal_by_default():
    trace = small_trace(num_jobs=20)
    with pytest.raises(FatalWorkerError, match="unrecoverable"):
        run_supervised(
            trace,
            supervisor=supervisor(max_restarts=0),
            kill_plan=WorkerKillPlan(kills=((2, 0),), when="before"),
        )


# ----------------------------------------------------------------------
# Taxonomy and configuration validation
# ----------------------------------------------------------------------


def test_error_taxonomy_subclasses_simulation_error():
    assert issubclass(FederationWorkerError, SimulationError)
    assert issubclass(RetryableWorkerError, FederationWorkerError)
    assert issubclass(FatalWorkerError, FederationWorkerError)


def test_supervisor_config_validation():
    with pytest.raises(ConfigurationError):
        SupervisorConfig(on_unrecoverable="explode")
    with pytest.raises(ConfigurationError):
        SupervisorConfig(max_restarts=-1)
    with pytest.raises(ConfigurationError):
        WorkerKillPlan(kills=((0, 0),), when="sometime")


def test_collect_timeout_validation():
    with pytest.raises(ConfigurationError):
        WorkerPoolBackend(bench_factory(), num_shards=2, workers=2, collect_timeout_s=0.0)
