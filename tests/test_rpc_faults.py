"""Control-plane chaos: fault injection, exactly-once delivery, lease safety.

Covers the RPC half of the robustness layer (``docs/robustness.md``): the
seeded :class:`FaultPlan`, the retry/backoff/idempotency machinery that makes
every logical call execute its handler exactly once under drops, lost
replies and duplicates, and the property that matters downstream -- a
deployment run under injected faults produces the *same schedule* as a
fault-free run, with zero leaked leases.
"""

from __future__ import annotations

import pytest

from repro.cluster.builder import build_cluster
from repro.core.exceptions import ConfigurationError, RpcFaultError
from repro.policies.scheduling import FifoScheduling
from repro.runtime.central_scheduler import CentralScheduler
from repro.runtime.client_library import BloxDataLoader
from repro.runtime.lease import OptimisticLeaseManager, build_lease_setup
from repro.runtime.rpc import (
    FaultPlan,
    FaultSpec,
    InMemoryRpcChannel,
    RetryPolicy,
    RpcCostModel,
)
from repro.runtime.worker_manager import WorkerManager
from repro.simulator.overheads import OverheadModel
from repro.workloads.philly import generate_philly_trace

MIXED_SPEC = FaultSpec(
    drop_rate=0.1, lose_reply_rate=0.1, duplicate_rate=0.1, delay_rate=0.1
)


class ScriptedPlan(FaultPlan):
    """A fault plan that injects an explicit fault sequence, then succeeds."""

    def __init__(self, faults):
        super().__init__(FaultSpec())
        self._faults = list(faults)

    def draw(self, endpoint, method):
        fault = self._faults.pop(0) if self._faults else "ok"
        if fault == "drop":
            self.drops += 1
        elif fault == "lose_reply":
            self.lost_replies += 1
        elif fault == "duplicate":
            self.duplicates += 1
        elif fault == "delay":
            self.delays += 1
        return fault


def counting_channel(plan, retry=RetryPolicy()):
    channel = InMemoryRpcChannel(RpcCostModel(), plan, retry)
    calls = []
    channel.register("server", "echo", lambda payload: calls.append(payload) or payload)
    return channel, calls


# ----------------------------------------------------------------------
# FaultPlan determinism and validation
# ----------------------------------------------------------------------


def test_fault_plan_same_seed_same_draws():
    first = FaultPlan(MIXED_SPEC, seed=3)
    second = FaultPlan(MIXED_SPEC, seed=3)
    draws = [(first.draw("e", "m"), second.draw("e", "m")) for _ in range(500)]
    assert all(a == b for a, b in draws)
    assert first.faults_injected == second.faults_injected > 0


def test_fault_plan_methods_filter():
    plan = FaultPlan(FaultSpec(drop_rate=1.0), seed=0, methods=("launch",))
    assert plan.draw("e", "renew_lease") == "ok"
    assert plan.draw("e", "launch") == "drop"


def test_fault_spec_validation():
    with pytest.raises(ConfigurationError):
        FaultSpec(drop_rate=0.7, lose_reply_rate=0.7)
    with pytest.raises(ConfigurationError):
        FaultSpec(drop_rate=-0.1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# Exactly-once semantics per fault type
# ----------------------------------------------------------------------


def test_drop_is_retried_and_handler_runs_once():
    channel, calls = counting_channel(ScriptedPlan(["drop"]))
    assert channel.call("server", "echo", "x") == "x"
    assert calls == ["x"]
    assert channel.retries == 1


def test_lost_reply_retry_is_deduplicated():
    channel, calls = counting_channel(ScriptedPlan(["lose_reply"]))
    assert channel.call("server", "echo", "x") == "x"
    # The handler ran on the first (reply-lost) delivery; the retry must NOT
    # re-execute it -- it surfaces the cached result instead.
    assert calls == ["x"]
    assert channel.retries == 1
    assert channel.duplicates_suppressed == 1


def test_duplicate_delivery_is_suppressed():
    channel, calls = counting_channel(ScriptedPlan(["duplicate"]))
    assert channel.call("server", "echo", "x") == "x"
    assert calls == ["x"]
    assert channel.duplicates_suppressed == 1
    assert channel.retries == 0


def test_delay_bills_the_caller():
    channel, _ = counting_channel(ScriptedPlan(["delay"]))
    channel.call("server", "echo", "x", caller="client")
    base = channel.cost_model.base_ms
    assert channel.busy_ms("client") == pytest.approx(
        base + channel.fault_plan.spec.delay_ms
    )


def test_exhausted_retries_raise():
    channel, calls = counting_channel(
        ScriptedPlan(["drop", "drop", "drop"]), retry=RetryPolicy(max_attempts=3)
    )
    with pytest.raises(RpcFaultError, match="after 3 attempt"):
        channel.call("server", "echo", "x")
    assert calls == []
    assert channel.exhausted == 1


def test_no_retry_policy_means_single_attempt():
    channel, _ = counting_channel(ScriptedPlan(["drop"]), retry=None)
    with pytest.raises(RpcFaultError, match="after 1 attempt"):
        channel.call("server", "echo", "x")


def test_every_call_executes_exactly_once_under_mixed_faults():
    channel = InMemoryRpcChannel(
        RpcCostModel(), FaultPlan(MIXED_SPEC, seed=5), RetryPolicy(max_attempts=16)
    )
    executions = {}
    channel.register(
        "server",
        "bump",
        lambda payload: executions.__setitem__(
            payload, executions.get(payload, 0) + 1
        ),
    )
    for i in range(300):
        channel.call("server", "bump", i)
    assert executions == {i: 1 for i in range(300)}
    assert channel.retries > 0
    assert channel.duplicates_suppressed > 0
    assert channel.exhausted == 0


def test_explicit_token_shares_one_execution():
    channel, calls = counting_channel(ScriptedPlan([]))
    first = channel.call("server", "echo", "a", idempotency_token="op:1")
    second = channel.call("server", "echo", "b", idempotency_token="op:1")
    assert first == second == "a"
    assert calls == ["a"]
    assert channel.duplicates_suppressed == 1


def test_fault_free_channel_unchanged():
    channel = InMemoryRpcChannel(RpcCostModel(base_ms=1.0, server_ms=2.0))
    channel.register("server", "echo", lambda payload: payload)
    assert channel.call("server", "echo", "x", caller="client") == "x"
    assert channel.busy_ms("client") == pytest.approx(1.0)
    assert channel.busy_ms("server") == pytest.approx(2.0)
    assert channel.fault_stats().faults_injected == 0


# ----------------------------------------------------------------------
# Lease protocol under faults
# ----------------------------------------------------------------------


def test_two_phase_revoke_exactly_once_under_faults():
    channel = InMemoryRpcChannel(
        RpcCostModel(), ScriptedPlan(["lose_reply", "duplicate", "drop"]),
        RetryPolicy(max_attempts=8),
    )
    workers = [WorkerManager(node_id=i, channel=channel) for i in range(3)]
    manager = OptimisticLeaseManager(workers, channel)
    manager.grant(7, [0, 1, 2])
    assert manager.renewal_round([7]) >= 0.0
    # Every worker agreed on the revoke despite the faults; no lease state
    # survives completion.
    assert all(w.leases.get(7) is False for w in workers)
    exit_iterations = {w.exit_iterations.get(7) for w in workers}
    assert len(exit_iterations) == 1
    manager.complete(7)
    assert manager.leaked_leases() == 0


def test_leaked_leases_counts_residual_state():
    manager, workers, _ = build_lease_setup(2, gpus_per_node=2)
    assert manager.leaked_leases() > 0  # granted jobs hold leases
    for job_id in list(manager.assignments):
        manager.complete(job_id)
    assert manager.leaked_leases() == 0


def test_worker_revoke_exit_iteration_is_monotonic():
    worker = WorkerManager(node_id=0)
    worker.leases[3] = True
    worker._handle_revoke({"job_id": 3, "exit_iteration": 9})
    assert worker.exit_iterations[3] == 9
    # A stale duplicate must never lower the agreed boundary.
    worker._handle_revoke({"job_id": 3, "exit_iteration": 4})
    assert worker.exit_iterations[3] == 9


def test_loader_exit_propagation_is_monotonic():
    worker = WorkerManager(node_id=0)
    loaders = [
        BloxDataLoader(job_id=1, worker=worker, total_iterations=100)
        for _ in range(2)
    ]
    loaders[0].attach_peers(loaders)
    loaders[0]._propagate_exit(8)
    loaders[0]._propagate_exit(5)
    assert loaders[0].exit_iteration == 8
    assert loaders[1].exit_iteration == 8
    assert worker.exit_iterations[1] == 8


# ----------------------------------------------------------------------
# Property: faulty runs schedule exactly like fault-free runs (seeds 0-4)
# ----------------------------------------------------------------------


def _deployment_fingerprint(fault_seed=None):
    jobs = generate_philly_trace(num_jobs=30, jobs_per_hour=20.0, seed=13).jobs
    scheduler = CentralScheduler(
        cluster_state=build_cluster(num_nodes=4),
        jobs=jobs,
        scheduling_policy=FifoScheduling(),
        round_duration=300.0,
        overhead_model=OverheadModel(),
        fault_plan=None
        if fault_seed is None
        else FaultPlan(
            FaultSpec(
                drop_rate=0.05,
                lose_reply_rate=0.05,
                duplicate_rate=0.05,
                delay_rate=0.05,
            ),
            seed=fault_seed,
        ),
        retry_policy=None if fault_seed is None else RetryPolicy(max_attempts=8),
    )
    result = scheduler.run()
    fingerprint = (
        tuple(sorted((j.job_id, j.completion_time) for j in result.jobs)),
        result.rounds,
        tuple(result.round_log),
    )
    return fingerprint, scheduler


@pytest.mark.parametrize("fault_seed", [0, 1, 2, 3, 4])
def test_schedule_parity_under_injected_faults(fault_seed):
    reference, _ = _deployment_fingerprint()
    faulty, scheduler = _deployment_fingerprint(fault_seed)
    assert faulty == reference
    assert scheduler.leaked_leases() == 0
    stats = scheduler.fault_stats()
    assert stats.faults_injected > 0
    assert stats.any_recovery()
    assert stats.exhausted == 0
