"""The ``cluster`` trace kind: scenario timeline firings as telemetry.

Covers the PR-8 follow-on from ROADMAP: `FailNodes`/`SpotWave`/`ScaleOut`
timeline firings stream as first-class, schema-versioned, replay/diff-safe
events -- from the drain API on :class:`TimelineClusterManager`, through the
wrapper managers on the runtime/federation paths, up to recorded RunSpec
runs being bit-identical across replays.
"""

import pytest

from repro.core.abstractions import ClusterManager
from repro.core.cluster_state import ClusterState
from repro.cluster.builder import build_cluster
from repro.federation.shard import BoundedClusterManager
from repro.scenarios.events import (
    GpuUpgradeEvent,
    NodeFailureEvent,
    NodeRecoveryEvent,
    ScaleInEvent,
    ScaleOutEvent,
)
from repro.scenarios.timeline import TimelineClusterManager
from repro.telemetry.events import (
    EVENT_CLUSTER,
    NONDETERMINISTIC_KINDS,
    SCHEMA_VERSION,
    TraceFormatError,
    TraceHeader,
)
from repro.telemetry.runspec import RunSpec, run_recorded
from repro.telemetry.sinks import RingBufferSink


def _cluster(num_nodes=4):
    return build_cluster(num_nodes=num_nodes, gpus_per_node=2, gpu_type="v100")


# ---------------------------------------------------------------------------
# Drain API
# ---------------------------------------------------------------------------


def test_drain_applied_reports_each_firing_once():
    manager = TimelineClusterManager(
        [NodeFailureEvent(time=100.0, node_ids=(1,)),
         NodeRecoveryEvent(time=200.0, node_ids=(1,))]
    )
    state = _cluster()

    assert manager.drain_applied() == []
    manager.update(state, 100.0)
    drained = manager.drain_applied()
    assert [(t, e.kind) for t, e, _ in drained] == [(100.0, "NodeFailureEvent")]
    # Cursor advanced: nothing new until the next firing.
    assert manager.drain_applied() == []

    manager.update(state, 250.0)
    drained = manager.drain_applied()
    assert [(t, e.kind) for t, e, _ in drained] == [(250.0, "NodeRecoveryEvent")]


def test_drain_matches_applied_log():
    manager = TimelineClusterManager(
        [NodeFailureEvent(time=50.0, node_ids=(0, 2)),
         ScaleOutEvent(time=60.0, num_nodes=1, gpus_per_node=2)]
    )
    state = _cluster()
    manager.update(state, 75.0)
    drained = manager.drain_applied()
    assert [(t, e.kind, ids) for t, e, ids in drained] == manager.applied_log


def test_default_manager_drains_nothing():
    assert ClusterManager().drain_applied() == []


def test_bounded_wrapper_delegates_drain():
    inner = TimelineClusterManager([NodeFailureEvent(time=10.0, node_ids=(0,))])
    wrapper = BoundedClusterManager(inner=inner)
    wrapper.update(_cluster(), 10.0)
    drained = wrapper.drain_applied()
    assert [e.kind for _, e, _ in drained] == ["NodeFailureEvent"]
    assert wrapper.drain_applied() == []


def test_membership_sync_wrapper_delegates_drain():
    from repro.runtime.central_scheduler import MembershipSyncManager

    class _StubLeases:
        def sync_membership(self, cluster_state):
            self.synced = True

    inner = TimelineClusterManager([ScaleInEvent(time=5.0, num_nodes=1)])
    wrapper = MembershipSyncManager(inner, _StubLeases())
    wrapper.update(_cluster(), 5.0)
    drained = wrapper.drain_applied()
    assert [e.kind for _, e, _ in drained] == ["ScaleInEvent"]


def test_drain_state_survives_pickle():
    import pickle

    manager = TimelineClusterManager(
        [NodeFailureEvent(time=10.0, node_ids=(0,)),
         NodeRecoveryEvent(time=20.0, node_ids=(0,))]
    )
    state = _cluster()
    manager.update(state, 10.0)
    manager.drain_applied()

    restored = pickle.loads(pickle.dumps(manager))
    # Already-drained firings are not re-reported after checkpoint/restore.
    assert restored.drain_applied() == []
    restored.update(state, 20.0)
    assert [e.kind for _, e, _ in restored.drain_applied()] == ["NodeRecoveryEvent"]


# ---------------------------------------------------------------------------
# Event descriptions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "event, expected",
    [
        (NodeFailureEvent(time=1.0, node_ids=(1, 2)), {"node_ids": [1, 2]}),
        (NodeRecoveryEvent(time=1.0, node_ids=(3,)), {"node_ids": [3]}),
        (
            ScaleOutEvent(time=1.0, num_nodes=2, gpus_per_node=4, gpu_type="a100"),
            {"num_nodes": 2, "gpus_per_node": 4, "gpu_type": "a100"},
        ),
        (
            ScaleInEvent(time=1.0, num_nodes=1),
            {"node_ids": [], "num_nodes": 1},
        ),
        (
            GpuUpgradeEvent(time=1.0, node_ids=(0,), gpu_type="a100"),
            {"node_ids": [0], "gpu_type": "a100"},
        ),
    ],
)
def test_describe_payloads_are_declarative(event, expected):
    import json

    assert event.describe() == expected
    json.dumps(event.describe())  # JSON-safe


# ---------------------------------------------------------------------------
# Recorded runs
# ---------------------------------------------------------------------------


def _record(spec):
    sink = RingBufferSink()
    run_recorded(spec, sink)
    return sink.events()


SCENARIO_SPEC = RunSpec(
    mode="core",
    policy="tiresias",
    scenario="failure-storm",
    scenario_smoke=True,
)


def test_scenario_run_records_cluster_events():
    events = _record(SCENARIO_SPEC)
    cluster = [e for e in events if e.kind == EVENT_CLUSTER]
    assert cluster, "scenario run must emit cluster trace events"
    for event in cluster:
        assert event.payload["event"].endswith("Event")
        assert event.payload["scheduled_time"] <= event.time
        assert isinstance(event.payload["evicted_jobs"], list)
    # Every eviction caused by churn references a cluster event round.
    eviction_times = {e.time for e in events if e.kind == "eviction"}
    cluster_times = {e.time for e in cluster}
    assert eviction_times <= cluster_times


def test_scenario_run_replays_bit_identical():
    first = _record(SCENARIO_SPEC)
    second = _record(SCENARIO_SPEC)
    assert first == second


def test_cluster_kind_is_diffed():
    """Cluster events are deterministic, so replay diffs must check them."""
    assert EVENT_CLUSTER not in NONDETERMINISTIC_KINDS


def test_recording_does_not_perturb_scenario_schedule():
    from repro.scenarios.registry import get_scenario
    from repro.simulator.engine import Simulator
    from repro.policies.scheduling import TiresiasScheduling
    from repro.telemetry.recorder import TraceRecorder

    def run(recorder):
        compiled = get_scenario("failure-storm", smoke=True).compile(seed=7)
        sim = Simulator(
            cluster_state=compiled.build_cluster(),
            jobs=compiled.trace.fresh_jobs(),
            scheduling_policy=TiresiasScheduling(),
            round_duration=compiled.spec.round_duration,
            cluster_manager=compiled.make_cluster_manager(),
            tracked_job_ids=compiled.trace.tracked_ids(),
            recorder=recorder,
        )
        result = sim.run()
        return [(j.job_id, j.completion_time) for j in result.jobs]

    untraced = run(None)
    traced = run(TraceRecorder(RingBufferSink(), source="sim"))
    assert untraced == traced


def test_plain_core_run_emits_no_cluster_events():
    events = _record(RunSpec(mode="core", num_jobs=10, num_nodes=4))
    assert [e for e in events if e.kind == EVENT_CLUSTER] == []


# ---------------------------------------------------------------------------
# Spec validation + schema versioning
# ---------------------------------------------------------------------------


def test_runspec_rejects_scenario_outside_core_mode():
    with pytest.raises(TraceFormatError):
        RunSpec(mode="runtime", scenario="failure-storm")


def test_runspec_rejects_unknown_scenario():
    with pytest.raises(TraceFormatError):
        RunSpec(mode="core", scenario="no-such-scenario")


def test_runspec_scenario_roundtrips_through_dict():
    spec = SCENARIO_SPEC
    assert RunSpec.from_dict(spec.as_dict()) == spec


def test_schema_bumped_and_v1_still_readable():
    assert SCHEMA_VERSION >= 2
    header = TraceHeader.from_record({"schema_version": 1, "metadata": {}})
    assert header.schema_version == 1
    with pytest.raises(TraceFormatError):
        TraceHeader.from_record({"schema_version": SCHEMA_VERSION + 1})
