"""Tests for the deployment-path runtime layer (leases, RPC, CentralScheduler).

Covers the lease lifecycle (grant / renew / revoke / complete), the two-phase
optimistic exit protocol with worker-to-worker propagation, the caller-aware
RPC cost accounting behind Fig. 19, membership dynamics under scenario churn,
and schedule parity between the deployment path and the plain simulator.
"""

import pytest

from repro.cluster.builder import ClusterSpec, build_cluster
from repro.core.abstractions import ClusterManager
from repro.core.exceptions import LeaseError
from repro.experiments.fig19_lease_scaling import measure_lease_round
from repro.experiments.harness import PolicySpec, run_policy
from repro.policies.scheduling.fifo import FifoScheduling
from repro.policies.scheduling.tiresias import TiresiasScheduling
from repro.runtime import (
    BloxDataLoader,
    CentralLeaseManager,
    CentralScheduler,
    InMemoryRpcChannel,
    MembershipSyncManager,
    OptimisticLeaseManager,
    RpcCostModel,
    WorkerManager,
    build_lease_setup,
)
from repro.runtime.lease import SCHEDULER_ENDPOINT
from repro.scenarios.spec import FailNodes, ScaleIn, ScaleOut, ScenarioSpec, WorkloadSpec
from repro.simulator.overheads import OverheadModel
from repro.workloads.philly import generate_philly_trace


def scheduler_calls(channel, method=None):
    calls = [c for c in channel.call_log if c.caller == SCHEDULER_ENDPOINT]
    if method is not None:
        calls = [c for c in calls if c.method == method]
    return calls


# ----------------------------------------------------------------------
# RPC channel accounting
# ----------------------------------------------------------------------


class TestRpcAccounting:
    def test_caller_and_callee_are_billed_separately(self):
        channel = InMemoryRpcChannel(RpcCostModel(base_ms=1.0, server_ms=10.0))
        channel.register("b", "ping", lambda p: "pong")
        channel.call("b", "ping", {}, caller="a")
        assert channel.busy_ms("a") == 1.0
        assert channel.busy_ms("b") == 10.0
        assert channel.critical_path_ms() == 10.0

    def test_nested_calls_bill_the_handling_endpoint(self):
        channel = InMemoryRpcChannel(RpcCostModel(base_ms=1.0, server_ms=10.0))
        channel.register("c", "leaf", lambda p: None)
        channel.register("b", "fan", lambda p: channel.call("c", "leaf", {}))
        channel.call("b", "fan", {}, caller="a")
        # a paid one client cost; b paid its server cost plus the client cost
        # of the nested call it made; c paid one server cost.  Nothing from
        # the fan-out lands on a.
        assert channel.busy_ms("a") == 1.0
        assert channel.busy_ms("b") == 11.0
        assert channel.busy_ms("c") == 10.0

    def test_unregister_endpoint_drops_all_methods(self):
        channel = InMemoryRpcChannel()
        worker = WorkerManager(node_id=3, channel=channel)
        assert channel.has_endpoint(worker.endpoint_name)
        channel.unregister_endpoint(worker.endpoint_name)
        assert not channel.has_endpoint(worker.endpoint_name)

    def test_unlogged_calls_still_count_and_bill(self):
        channel = InMemoryRpcChannel()
        channel.register("b", "ping", lambda p: None)
        channel.call("b", "ping", {}, caller="a", log=False)
        assert channel.total_calls == 1
        assert channel.call_log == []
        assert channel.busy_ms("b") > 0


# ----------------------------------------------------------------------
# Lease lifecycle: completion releases everything
# ----------------------------------------------------------------------


class TestLeaseLifecycle:
    def test_completion_releases_lease_and_worker_state(self):
        manager, workers, channel = build_lease_setup(2, protocol="central")
        job_id = 0
        worker = workers[0]
        assert job_id in manager.assignments
        assert worker.lease_valid(job_id)
        manager.complete(job_id)
        assert job_id not in manager.assignments
        assert job_id not in worker.leases
        assert job_id not in worker.exit_iterations
        assert job_id not in worker.metrics

    def test_finished_jobs_generate_no_central_renewal_traffic(self):
        manager, _workers, channel = build_lease_setup(2, gpus_per_node=2, protocol="central")
        total_jobs = 4
        manager.renewal_round()
        assert channel.total_calls == 2 * total_jobs  # one check + one renew per lease
        manager.complete(0)
        manager.complete(1)
        manager.renewal_round()
        assert channel.total_calls == 2 * (total_jobs - 2)

    def test_completion_clears_state_on_former_workers_after_migration(self):
        manager, workers, _channel = build_lease_setup(4, protocol="optimistic")
        manager.grant(500, [0, 1])
        manager.renewal_round([500])  # preempted: drain state stays on 0 and 1
        assert workers[0].exit_iterations.get(500) is not None
        manager.grant(500, [2, 3])  # relaunched elsewhere
        manager.complete(500)
        for worker in workers:
            assert 500 not in worker.leases
            assert 500 not in worker.exit_iterations
            assert 500 not in worker.metrics

    def test_central_revocation_releases_assignment(self):
        manager, _workers, _channel = build_lease_setup(2, protocol="central")
        manager.renewal_round([0])
        assert 0 not in manager.assignments
        manager.renewal_round([0])  # revoking again is a no-op, not an error


# ----------------------------------------------------------------------
# Optimistic protocol: one revoke per job, worker-to-worker fan-out
# ----------------------------------------------------------------------


class TestOptimisticProtocol:
    def test_scheduler_issues_exactly_one_revoke_per_revoked_job(self):
        manager, _workers, channel = build_lease_setup(4, protocol="optimistic")
        manager.grant(100, [0, 1, 2, 3])
        manager.grant(101, [0, 1])
        manager.renewal_round([100, 101])
        assert len(scheduler_calls(channel, "revoke_lease")) == 2
        # Peers were reached by worker-to-worker propagation, not by the
        # scheduler: every other revoke names a worker as its caller.
        peer_revokes = [
            c
            for c in channel.call_log
            if c.method == "revoke_lease" and c.caller != SCHEDULER_ENDPOINT
        ]
        assert len(peer_revokes) == 3 + 1  # 3 peers of job 100, 1 peer of job 101
        assert all(c.caller.startswith("worker-") for c in peer_revokes)

    def test_peer_fanout_does_not_bill_the_scheduler(self):
        cost = RpcCostModel(base_ms=1.0, server_ms=2.0)
        manager, _workers, channel = build_lease_setup(8, cost_model=cost, protocol="optimistic")
        manager.grant(200, list(range(8)))
        manager.renewal_round([200])
        # One client-side cost for the single revoke, regardless of gang width.
        assert channel.busy_ms(SCHEDULER_ENDPOINT) == 1.0

    def test_exit_iterations_are_concrete_integers(self):
        manager, workers, _channel = build_lease_setup(3, protocol="optimistic")
        manager.grant(300, [0, 1, 2])
        workers[0].record_iteration(300, 41)
        manager.renewal_round([300])
        for worker in workers:
            assert worker.exit_iterations[300] == 42
            assert isinstance(worker.exit_iterations[300], int)

    def test_revoke_is_idempotent_for_unknown_and_completed_jobs(self):
        channel = InMemoryRpcChannel()
        worker = WorkerManager(node_id=0, channel=channel)
        assert worker._handle_revoke({"job_id": 99}) is False  # never launched
        worker._handle_launch({"job_id": 7})
        worker.job_finished(7)  # completed between decision and revoke
        assert worker._handle_revoke({"job_id": 7}) is False
        assert 7 not in worker.exit_iterations

    def test_renewal_round_skips_jobs_completed_between_decision_and_revoke(self):
        manager, _workers, channel = build_lease_setup(2, protocol="optimistic")
        manager.complete(0)
        latency = manager.renewal_round([0])
        assert latency == 0.0
        assert channel.total_calls == 0

    def test_revocation_survives_workers_whose_node_left(self):
        manager, _workers, _channel = build_lease_setup(3, protocol="optimistic")
        manager.grant(400, [0, 1, 2])
        manager.deregister_worker(0)
        manager.renewal_round([400])  # first worker gone: next one is contacted
        assert 400 not in manager.assignments
        manager.grant(401, [1])
        manager.deregister_worker(1)
        manager.renewal_round([401])  # every worker gone: lease dies silently
        assert 401 not in manager.assignments


# ----------------------------------------------------------------------
# Fig. 19 scaling shape
# ----------------------------------------------------------------------


class TestLeaseScaling:
    def test_central_latency_grows_with_cluster_size(self):
        latencies = [measure_lease_round(n, "central", 2) for n in (4, 8, 16)]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_optimistic_latency_depends_only_on_revocations(self):
        across_sizes = {measure_lease_round(n, "optimistic", 2) for n in (4, 8, 16)}
        assert len(across_sizes) == 1
        by_revocations = [measure_lease_round(16, "optimistic", r) for r in (0, 2, 8)]
        assert by_revocations[0] < by_revocations[1] < by_revocations[2]


# ----------------------------------------------------------------------
# Client library: two-phase exit
# ----------------------------------------------------------------------


class TestTwoPhaseExit:
    def _distributed_job(self, total_iterations=50):
        worker_a = WorkerManager(node_id=0)
        worker_b = WorkerManager(node_id=1)
        for worker in (worker_a, worker_b):
            worker._handle_launch({"job_id": 1})
        loader_a = BloxDataLoader(1, worker_a, total_iterations)
        loader_b = BloxDataLoader(1, worker_b, total_iterations)
        loader_a.attach_peers([loader_a, loader_b])
        loader_b.attach_peers([loader_a, loader_b])
        return worker_a, worker_b, loader_a, loader_b

    def test_peers_racing_ahead_stop_at_the_same_boundary(self):
        worker_a, _worker_b, loader_a, loader_b = self._distributed_job()
        next(loader_b)
        next(loader_b)  # b raced two iterations ahead of a
        worker_a.leases[1] = False  # revocation lands at a's worker
        checkpoint_a = loader_a.run_to_completion_or_preemption()
        checkpoint_b = loader_b.run_to_completion_or_preemption()
        assert checkpoint_a.iteration == checkpoint_b.iteration == 3
        assert checkpoint_a.consistent and checkpoint_b.consistent

    def test_rpc_revocation_fixes_the_boundary_for_all_loaders(self):
        channel = InMemoryRpcChannel()
        workers = [WorkerManager(node_id=i, channel=channel) for i in range(2)]
        manager = OptimisticLeaseManager(workers, channel)
        manager.grant(1, [0, 1])
        loaders = [BloxDataLoader(1, w, total_iterations=50) for w in workers]
        for loader in loaders:
            loader.attach_peers(loaders)
        for loader in loaders:
            for _ in range(4):
                next(loader)
        manager.renewal_round([1])
        checkpoints = [loader.run_to_completion_or_preemption() for loader in loaders]
        assert checkpoints[0].iteration == checkpoints[1].iteration == 5

    def test_rpc_boundary_is_raised_past_peers_that_raced_ahead(self):
        channel = InMemoryRpcChannel()
        workers = [WorkerManager(node_id=i, channel=channel) for i in range(2)]
        manager = OptimisticLeaseManager(workers, channel)
        manager.grant(1, [0, 1])
        loaders = [BloxDataLoader(1, w, total_iterations=50) for w in workers]
        for loader in loaders:
            loader.attach_peers(loaders)
        for _ in range(4):
            next(loaders[0])
        for _ in range(6):
            next(loaders[1])  # raced past the boundary worker 0 would fix (5)
        manager.renewal_round([1])
        checkpoints = [loader.run_to_completion_or_preemption() for loader in loaders]
        # The worker-fixed boundary is a floor; the loaders raise it to one
        # past the furthest peer so both checkpoint at the same iteration.
        assert checkpoints[0].iteration == checkpoints[1].iteration == 7
        assert all(c.consistent for c in checkpoints)

    def test_completion_clears_worker_state(self):
        worker = WorkerManager(node_id=0)
        worker._handle_launch({"job_id": 5})
        loader = BloxDataLoader(5, worker, total_iterations=3)
        checkpoint = loader.run_to_completion_or_preemption()
        assert checkpoint.iteration == 3
        assert 5 not in worker.leases
        assert 5 not in worker.job_iterations


# ----------------------------------------------------------------------
# CentralScheduler: lifecycle, churn, parity, metrics
# ----------------------------------------------------------------------


def small_trace(num_jobs=14, seed=11):
    return generate_philly_trace(num_jobs=num_jobs, jobs_per_hour=8.0, seed=seed)


def churn_scenario():
    return ScenarioSpec(
        name="runtime-churn-test",
        cluster=ClusterSpec(num_nodes=4, gpus_per_node=4, gpu_type="v100"),
        workload=WorkloadSpec(generator="philly", num_jobs=16, jobs_per_hour=10.0),
        timeline=(
            ScaleOut(at=3600.0, num_nodes=2),
            FailNodes(at=7200.0, count=1, recover_after=3600.0),
            ScaleIn(at=14400.0, num_nodes=2),
        ),
    ).compile(7)


class TestCentralScheduler:
    @pytest.mark.parametrize("lease_protocol", ["central", "optimistic"])
    def test_all_leases_released_at_end_of_run(self, lease_protocol):
        trace = small_trace()
        scheduler = CentralScheduler(
            cluster_state=build_cluster(num_nodes=4),
            jobs=trace.fresh_jobs(),
            scheduling_policy=TiresiasScheduling(),
            lease_protocol=lease_protocol,
            overhead_model=OverheadModel(),
            tracked_job_ids=trace.tracked_ids(),
        )
        result = scheduler.run()
        assert result.completion_fraction() == 1.0
        assert scheduler.lease_manager.assignments == {}
        for worker in scheduler.workers.values():
            # Completion clears worker state everywhere the job ever ran --
            # revoked-lease and exit-iteration drain entries included.
            assert worker.leases == {}
            assert worker.exit_iterations == {}
            assert worker.running_jobs == []

    def test_schedule_parity_with_plain_simulator_zero_overheads(self):
        trace = small_trace()
        zero = OverheadModel(scale=0)
        scheduler = CentralScheduler(
            cluster_state=build_cluster(num_nodes=4),
            jobs=trace.fresh_jobs(),
            scheduling_policy=FifoScheduling(),
            overhead_model=zero,
            tracked_job_ids=trace.tracked_ids(),
        )
        deployment = scheduler.run()
        simulation = run_policy(
            trace,
            PolicySpec(label="fifo", scheduling=FifoScheduling),
            num_nodes=4,
            overhead_model=OverheadModel(scale=0),
        )
        assert {j.job_id: j.completion_time for j in deployment.jobs} == {
            j.job_id: j.completion_time for j in simulation.jobs
        }
        assert deployment.rounds == simulation.rounds
        assert deployment.round_log == simulation.round_log

    def test_membership_dynamics_under_scenario_churn(self):
        compiled = churn_scenario()
        scheduler = CentralScheduler(
            cluster_state=compiled.build_cluster(),
            jobs=compiled.trace.fresh_jobs(),
            scheduling_policy=TiresiasScheduling(),
            overhead_model=OverheadModel(),
            cluster_manager=compiled.make_cluster_manager(),
            tracked_job_ids=compiled.trace.tracked_ids(),
        )
        result = scheduler.run()  # must not raise LeaseError
        assert result.completion_fraction() == 1.0
        log = scheduler.lease_manager.membership_log
        registered = [n for op, n in log if op == "register"]
        deregistered = [n for op, n in log if op == "deregister"]
        assert registered == [4, 5]  # the two scaled-out nodes joined...
        assert deregistered == [4, 5]  # ...and were reclaimed by scale-in
        assert sorted(scheduler.workers) == [0, 1, 2, 3]

    def test_churn_parity_deployment_vs_simulation(self):
        compiled = churn_scenario()
        scheduler = CentralScheduler(
            cluster_state=compiled.build_cluster(),
            jobs=compiled.trace.fresh_jobs(),
            scheduling_policy=TiresiasScheduling(),
            overhead_model=OverheadModel(),
            cluster_manager=compiled.make_cluster_manager(),
            tracked_job_ids=compiled.trace.tracked_ids(),
        )
        deployment = scheduler.run()
        simulation = run_policy(
            compiled.trace,
            PolicySpec(label="tiresias", scheduling=TiresiasScheduling),
            num_nodes=compiled.spec.cluster.num_nodes,
            cluster=compiled.build_cluster(),
            cluster_manager=compiled.make_cluster_manager(),
            round_duration=compiled.spec.round_duration,
        )
        assert {j.job_id: j.completion_time for j in deployment.jobs} == {
            j.job_id: j.completion_time for j in simulation.jobs
        }
        assert deployment.rounds == simulation.rounds

    def test_grant_on_unknown_node_still_fails_loudly(self):
        channel = InMemoryRpcChannel()
        manager = CentralLeaseManager([WorkerManager(node_id=0, channel=channel)], channel)
        with pytest.raises(LeaseError):
            manager.grant(1, [42])

    def test_worker_metrics_are_pulled_into_the_aggregate(self):
        trace = small_trace(num_jobs=8)
        scheduler = CentralScheduler(
            cluster_state=build_cluster(num_nodes=4),
            jobs=trace.fresh_jobs(),
            scheduling_policy=FifoScheduling(),
            overhead_model=OverheadModel(),
            tracked_job_ids=trace.tracked_ids(),
        )
        result = scheduler.run()
        aggregator = scheduler.worker_metrics
        assert aggregator is not None
        assert aggregator.pull_rounds > 0
        finished = [j for j in result.jobs if j.completion_time is not None]
        # Every job that ran reported work_done through its worker store.
        assert set(aggregator.latest) == {j.job_id for j in finished}
        for job in finished:
            assert aggregator.latest_for(job.job_id)["work_done"] > 0


class TestFidelityRunner:
    def test_fig18_deviation_is_small(self):
        from repro.experiments.fig18_fidelity import run_fig18

        table = run_fig18(policies=("fifo", "tiresias"), num_jobs=12, num_nodes=4)
        assert len(table.rows) == 2
        for row in table.rows:
            # The deployment path with cluster jitter must track plain
            # simulation to within a few per cent (the Fig. 18 claim).
            assert row["avg_jct_deviation"] < 0.10


class TestMembershipSyncManager:
    def test_unmigrated_inner_manager_disables_event_skipping(self):
        class LegacyManager(ClusterManager):
            def update(self, cluster_state, current_time):
                return []

        channel = InMemoryRpcChannel()
        lease = OptimisticLeaseManager([WorkerManager(node_id=0, channel=channel)], channel)
        sync = MembershipSyncManager(LegacyManager(), lease)
        assert sync.next_event_time(123.0) == 123.0

    def test_timeline_inner_manager_keeps_event_bound(self):
        compiled = churn_scenario()
        channel = InMemoryRpcChannel()
        lease = OptimisticLeaseManager([WorkerManager(node_id=0, channel=channel)], channel)
        sync = MembershipSyncManager(compiled.make_cluster_manager(), lease)
        assert sync.next_event_time(0.0) == 3600.0
