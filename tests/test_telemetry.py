"""Telemetry tests: schema, sinks, merges, parity, replay/diff, CLI, dashboard.

The contracts under test:

* the versioned schema round-trips through both file sinks (JSONL and
  SQLite) byte-for-byte, and malformed records fail loudly;
* per-source monotonic ``seq`` makes multi-stream merges deterministic --
  including across parallel federation workers under *both* the fork and
  spawn start methods (per-shard trace files must be byte-identical);
* recording is schedule-neutral: a traced run is bit-identical to the
  untraced run for every scheduling policy;
* a recorded trace is self-replaying (``run_recorded`` from its own header
  spec reproduces the event stream exactly, in all three modes) and
  ``trace diff`` catches a seeded divergence;
* the CLI exit codes are what CI relies on (0 identical, 1 diverged,
  2 unusable trace);
* the dashboard aggregator folds event streams into the documented snapshot.
"""

import json
import multiprocessing
import pickle

import pytest

from repro.core.exceptions import ConfigurationError
from repro.dashboard import DashboardAggregator, percentile
from repro.federation import (
    FederationEngine,
    ParallelFederationEngine,
    UniformShardFactory,
    make_router,
)
from repro.policies.placement.consolidated import ConsolidatedPlacement
from repro.policies.scheduling import FifoScheduling, SrtfScheduling, TiresiasScheduling
from repro.simulator.engine import Simulator
from repro.telemetry import (
    EVENT_DECISION,
    EVENT_JOB,
    EVENT_ROUND,
    EVENT_SUPERVISOR,
    EVENT_TIMING,
    SCHEMA_VERSION,
    JsonlSink,
    RingBufferSink,
    SqliteSink,
    TraceEvent,
    TraceFollower,
    TraceFormatError,
    TraceHeader,
    TraceRecorder,
    config_hash,
    merge_events,
    open_sink,
    read_trace,
    run_metadata,
)
from repro.telemetry.diff import diff_streams
from repro.telemetry.runspec import RunSpec, run_recorded
from repro.trace import main as trace_main
from repro.workloads.philly import generate_philly_trace

ROUND = 300.0

SAMPLE_EVENTS = [
    TraceEvent("sim", 1, 0.0, EVENT_ROUND, {"running": 3, "queued": 1}),
    TraceEvent("sim", 2, 300.0, EVENT_JOB, {"job_id": 7, "status": "RUNNING"}),
    TraceEvent("sim", 3, 300.0, EVENT_DECISION, {"launch": [[7, [0, 1]]], "suspend": []}),
    # Tricky payloads: quotes, unicode, floats that need repr, empty dict.
    TraceEvent("shard0", 1, 600.0, EVENT_JOB, {"note": 'say "hi" ✓', "f": 0.1}),
    TraceEvent("shard0", 2, 900.0, EVENT_ROUND, {}),
]


def small_trace(num_jobs=30, seed=7, jobs_per_hour=6.0):
    return generate_philly_trace(
        num_jobs=num_jobs, jobs_per_hour=jobs_per_hour, seed=seed
    )


def build_simulator(scheduling, recorder=None, **kwargs):
    from repro.cluster.builder import build_cluster

    trace = small_trace()
    return Simulator(
        cluster_state=build_cluster(
            num_nodes=8, gpus_per_node=4, gpu_type="v100", network_bw_gbps=10.0
        ),
        jobs=trace.fresh_jobs(),
        scheduling_policy=scheduling(),
        placement_policy=ConsolidatedPlacement(),
        round_duration=ROUND,
        recorder=recorder,
        **kwargs,
    )


def completions(result):
    return {j.job_id: j.completion_time for j in result.jobs}


# ----------------------------------------------------------------------
# Schema round-trips
# ----------------------------------------------------------------------


def test_event_record_round_trip():
    for event in SAMPLE_EVENTS:
        assert TraceEvent.from_record(event.as_record()) == event
    with pytest.raises(TraceFormatError):
        TraceEvent.from_record({"source": "sim", "seq": "not-an-int"})


def test_header_round_trip_and_version_gate():
    header = TraceHeader(
        metadata=run_metadata(7, {"k": 1}, started_at=123.0),
        spec=RunSpec().as_dict(),
    )
    restored = TraceHeader.from_record(header.as_record())
    assert restored == header
    assert restored.schema_version == SCHEMA_VERSION
    with pytest.raises(TraceFormatError):
        TraceHeader.from_record({"schema_version": SCHEMA_VERSION + 1})
    with pytest.raises(TraceFormatError):
        TraceHeader.from_record({"metadata": {}})  # no version at all


@pytest.mark.parametrize("fmt", ["jsonl", "sqlite"])
def test_file_sink_round_trip(tmp_path, fmt):
    path = str(tmp_path / f"trace.{fmt}")
    header = TraceHeader(metadata={"seed": 7})
    with open_sink(path, fmt=fmt) as sink:
        assert isinstance(sink, JsonlSink if fmt == "jsonl" else SqliteSink)
        sink.write_header(header)
        for event in SAMPLE_EVENTS:
            sink.emit(event)
    read_header, read_events = read_trace(path)
    assert read_header == header
    assert read_events == SAMPLE_EVENTS


def test_jsonl_lines_are_canonical_json(tmp_path):
    # The hand-assembled fast path must stay byte-identical to the sorted
    # compact encoding of ``as_record`` -- replay parity is byte parity.
    path = str(tmp_path / "trace.jsonl")
    with JsonlSink(path) as sink:
        sink.write_header(TraceHeader(metadata={"seed": 7}))
        for event in SAMPLE_EVENTS:
            sink.emit(event)
    lines = open(path, encoding="utf-8").read().splitlines()[1:]
    # ensure_ascii=False: the canonical form is raw UTF-8, which is what
    # both the stdlib fallback and the orjson accelerator produce.
    expected = [
        json.dumps(e.as_record(), ensure_ascii=False, sort_keys=True, separators=(",", ":"))
        for e in SAMPLE_EVENTS
    ]
    assert lines == expected


def test_open_sink_by_extension(tmp_path):
    assert isinstance(open_sink(str(tmp_path / "t.db")), SqliteSink)
    assert isinstance(open_sink(str(tmp_path / "t.jsonl")), JsonlSink)
    with pytest.raises(TraceFormatError):
        open_sink(str(tmp_path / "t"), fmt="xml")


def test_file_sinks_refuse_pickle(tmp_path):
    # A sink crossing a process/checkpoint boundary would re-emit duplicate
    # records after restore; both file sinks refuse up front.
    for sink in (JsonlSink(str(tmp_path / "a.jsonl")), SqliteSink(str(tmp_path / "a.db"))):
        with sink:
            with pytest.raises(TypeError):
                pickle.dumps(sink)


def test_ring_buffer_bounds_memory():
    sink = RingBufferSink(capacity=2)
    for event in SAMPLE_EVENTS:
        sink.emit(event)
    assert sink.events() == SAMPLE_EVENTS[-2:]
    with pytest.raises(TraceFormatError):
        RingBufferSink(capacity=-1)


def test_trace_follower_incremental(tmp_path):
    path = str(tmp_path / "grow.jsonl")
    sink = JsonlSink(path)
    sink.write_header(TraceHeader(metadata={"seed": 1}))
    sink.emit(SAMPLE_EVENTS[0])
    sink.flush()
    follower = TraceFollower(path)
    assert follower.poll() == [SAMPLE_EVENTS[0]]
    assert follower.header is not None
    sink.emit(SAMPLE_EVENTS[1])
    sink.emit(SAMPLE_EVENTS[2])
    sink.flush()
    # Only the records appended since the previous poll come back.
    assert follower.poll() == [SAMPLE_EVENTS[1], SAMPLE_EVENTS[2]]
    assert follower.poll() == []
    sink.close()


# ----------------------------------------------------------------------
# Deterministic merges
# ----------------------------------------------------------------------


def test_merge_is_order_independent():
    streams = {}
    for event in SAMPLE_EVENTS:
        streams.setdefault(event.source, []).append(event)
    forward = merge_events(list(streams.values()))
    reverse = merge_events(list(reversed(list(streams.values()))))
    assert forward == reverse
    assert forward == sorted(forward, key=TraceEvent.sort_key)
    assert {e.source for e in forward} == set(streams)


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_parallel_shard_traces_deterministic(tmp_path, start_method):
    # Worker-side recording: each shard opens its own JSONL sink inside the
    # worker process (factory.trace_dir), so the per-shard stream must be
    # byte-identical to the serial run's -- under both start methods.
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} start method unavailable")
    trace = small_trace(num_jobs=20, seed=3)

    def run(mode_dir, parallel):
        factory = UniformShardFactory(
            nodes_per_shard=4,
            scheduling_factory=FifoScheduling,
            placement_factory=ConsolidatedPlacement,
            round_duration=ROUND,
            trace_dir=str(tmp_path / mode_dir),
        )
        if parallel:
            ParallelFederationEngine(
                factory=factory,
                num_shards=2,
                router=make_router("round-robin"),
                jobs=trace.fresh_jobs(),
                tracked_job_ids=trace.tracked_ids(),
                workers=2,
                mp_context=start_method,
            ).run()
        else:
            FederationEngine(
                factory.build_all(2),
                make_router("round-robin"),
                trace.fresh_jobs(),
                tracked_job_ids=trace.tracked_ids(),
            ).run()

    run("serial", parallel=False)
    run("parallel", parallel=True)
    merged = {}
    for mode_dir in ("serial", "parallel"):
        streams = []
        for shard_id in (0, 1):
            path = tmp_path / mode_dir / f"shard-{shard_id}.jsonl"
            serial_path = tmp_path / "serial" / f"shard-{shard_id}.jsonl"
            assert path.read_bytes() == serial_path.read_bytes()
            streams.append(read_trace(str(path))[1])
        merged[mode_dir] = merge_events(streams)
    assert merged["serial"] == merged["parallel"]
    assert merged["serial"]  # actually recorded something


# ----------------------------------------------------------------------
# Recording is schedule-neutral
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "scheduling", [FifoScheduling, SrtfScheduling, TiresiasScheduling]
)
def test_traced_run_matches_untraced(scheduling):
    untraced = build_simulator(scheduling).run()
    sink = RingBufferSink()
    traced = build_simulator(
        scheduling, recorder=TraceRecorder(sink, source="sim")
    ).run()
    assert completions(untraced) == completions(traced)
    assert untraced.round_log == traced.round_log
    assert untraced.rounds == traced.rounds
    events = sink.events()
    # Every appended round record passed through the trace choke point.
    assert sum(1 for e in events if e.kind == EVENT_ROUND) == len(traced.round_log)
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_round_log_limit_bounds_history():
    full = build_simulator(FifoScheduling).run()
    bounded = build_simulator(FifoScheduling, round_log_limit=5).run()
    disabled = build_simulator(FifoScheduling, round_log_limit=0).run()
    assert bounded.rounds == full.rounds
    assert bounded.round_log == full.round_log[-5:]
    assert disabled.round_log == []
    assert completions(bounded) == completions(full)
    with pytest.raises(ConfigurationError):
        build_simulator(FifoScheduling, round_log_limit=-1)


# ----------------------------------------------------------------------
# Replay determinism + diff
# ----------------------------------------------------------------------


def _spec(mode, **overrides):
    base = dict(
        mode=mode, policy="fifo", seed=11, num_jobs=16, jobs_per_hour=6.0,
        num_nodes=8, round_duration=ROUND,
    )
    base.update(overrides)
    return RunSpec(**base)


@pytest.mark.parametrize("mode", ["core", "runtime", "federation"])
def test_replay_is_bit_identical(mode):
    spec = _spec(mode)
    first, second = RingBufferSink(), RingBufferSink()
    run_recorded(spec, first, started_at=1.0)
    run_recorded(spec, second, write_header=False)
    assert diff_streams(first.events(), second.events()) == []
    assert first.events()  # a replay test over zero events proves nothing
    header = first.header
    assert header.spec == spec.as_dict()
    assert RunSpec.from_dict(header.spec) == spec
    assert header.metadata["seed"] == spec.seed
    assert header.metadata["started_at"] == 1.0


def test_diff_catches_seeded_divergence():
    a, b = RingBufferSink(), RingBufferSink()
    run_recorded(_spec("core"), a)
    run_recorded(_spec("core", seed=12), b)
    divergences = diff_streams(a.events(), b.events())
    assert divergences
    assert any("sim" in line for line in divergences)


def test_diff_skips_nondeterministic_kinds_by_default():
    base = [TraceEvent("sim", 1, 0.0, EVENT_ROUND, {"running": 1})]
    noisy = base + [
        TraceEvent("sim", 2, 0.0, EVENT_TIMING, {"wall_s": 1.23}),
        TraceEvent("sim", 3, 0.0, EVENT_SUPERVISOR, {"action": "restart"}),
    ]
    assert diff_streams(base, noisy) == []
    assert diff_streams(base, noisy, ignore_kinds=frozenset())


def test_runspec_validation():
    with pytest.raises(TraceFormatError):
        RunSpec(mode="dream")
    with pytest.raises(TraceFormatError):
        RunSpec(policy="lottery")
    with pytest.raises(TraceFormatError):
        RunSpec(mode="federation", num_nodes=8, shards=3)
    with pytest.raises(TraceFormatError):
        RunSpec(mode="federation", router="carrier-pigeon")
    with pytest.raises(TraceFormatError):
        RunSpec.from_dict({"mode": "core", "flux_capacitor": 1})


def test_run_metadata_fields():
    meta = run_metadata(42, {"b": 2, "a": 1}, started_at=99.5)
    assert meta["seed"] == 42
    assert meta["started_at"] == 99.5
    assert set(meta) == {"seed", "config_hash", "repro_version", "python", "started_at"}
    # The hash is order-insensitive over the config mapping, but sensitive
    # to its values -- that is what makes it a run fingerprint.
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------


def test_cli_record_replay_diff_show(tmp_path, capsys):
    recorded = str(tmp_path / "run.jsonl")
    spec_args = ["--jobs", "12", "--nodes", "4", "--seed", "11"]
    assert trace_main(["record", *spec_args, "--out", recorded]) == 0
    assert trace_main(["replay", recorded]) == 0
    assert trace_main(["diff", recorded, recorded]) == 0
    other = str(tmp_path / "other.db")
    assert (
        trace_main(
            ["record", *spec_args[:-1], "13", "--out", other, "--format", "sqlite"]
        )
        == 0
    )
    assert trace_main(["diff", recorded, other]) == 1
    assert trace_main(["show", recorded, "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "diverge" in out and "schema_version" in out


def test_cli_rejects_unreplayable_trace(tmp_path):
    # A trace without a run spec in its header cannot be replayed (exit 2),
    # and a missing file is an error, not a traceback.
    bare = str(tmp_path / "bare.jsonl")
    with JsonlSink(bare) as sink:
        sink.write_header(TraceHeader(metadata={"seed": 1}))
        sink.emit(SAMPLE_EVENTS[0])
    assert trace_main(["replay", bare]) == 2
    assert trace_main(["diff", bare, str(tmp_path / "missing.jsonl")]) == 2


# ----------------------------------------------------------------------
# Dashboard aggregation
# ----------------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [4.0, 1.0, 3.0, 2.0]
    assert percentile(values, 50) == 2.0
    assert percentile(values, 99) == 4.0
    assert percentile(values, 0) == 1.0
    assert percentile([], 50) is None


def test_dashboard_aggregator_snapshot():
    agg = DashboardAggregator()
    agg.consume(
        [
            TraceEvent("sim", 1, 300.0, EVENT_ROUND, {"running": 3, "queued": 2, "utilization": 0.5}),
            TraceEvent("sim", 2, 600.0, EVENT_ROUND, {"running": 4, "queued": 0, "utilization": 0.75}),
            TraceEvent("sim", 3, 300.0, EVENT_JOB, {"job_id": 1, "op": "tracked", "num_gpus": 2}),
            TraceEvent("sim", 4, 600.0, EVENT_JOB, {"job_id": 1, "op": "status", "status": "COMPLETED", "jct": 450.0}),
            TraceEvent("sim", 5, 600.0, EVENT_JOB, {"job_id": 2, "op": "tracked", "num_gpus": 1}),
        ]
    )
    snap = agg.snapshot()
    assert snap["events"] == 5
    assert snap["sim_time"] == 600.0
    assert snap["jobs"] == {"tracked": 2, "finished": 1, "in_flight": 1}
    assert snap["jct"]["p50"] == 450.0
    # The per-source row reflects the *latest* round event.
    assert snap["sources"]["sim"]["running"] == 4
    text = agg.render_text()
    assert "events" in text and "sim" in text
