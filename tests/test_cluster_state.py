"""Index-invariant tests for the refactored ``ClusterState``.

Every mutation sequence is followed by ``check_invariants()``, which recomputes
the free sets, the job->GPU index and the cached counters from the raw GPU rows
and asserts they agree -- so any drift between the incremental bookkeeping and
the ground truth fails loudly.
"""

import random

import pytest

from repro.cluster.builder import build_cluster
from repro.cluster.node import Node
from repro.core.cluster_state import ClusterState
from repro.core.exceptions import AllocationError, UnknownNodeError


def test_add_node_assign_release_roundtrip():
    cluster = build_cluster(num_nodes=3, gpus_per_node=4)
    cluster.check_invariants()
    assert cluster.total_gpus == 12
    assert cluster.num_free_gpus() == 12
    assert cluster.utilization() == 0.0

    cluster.assign(7, [0, 1, 5])
    cluster.check_invariants()
    assert cluster.num_free_gpus() == 9
    assert [g.gpu_id for g in cluster.gpus_for_job(7)] == [0, 1, 5]
    assert cluster.nodes_for_job(7) == [0, 1]
    assert not cluster.job_is_consolidated(7)
    assert cluster.jobs_with_allocations() == [7]
    assert cluster.utilization() == pytest.approx(3 / 12)

    freed = cluster.release_job(7)
    cluster.check_invariants()
    assert freed == [0, 1, 5]
    assert cluster.num_free_gpus() == 12
    assert cluster.gpus_for_job(7) == []
    assert cluster.jobs_with_allocations() == []


def test_double_assignment_raises_and_leaves_state_clean():
    cluster = build_cluster(num_nodes=1, gpus_per_node=4)
    cluster.assign(1, [0])
    with pytest.raises(AllocationError):
        cluster.assign(2, [1, 0])  # GPU 0 is taken; nothing must stick
    cluster.check_invariants()
    assert cluster.gpus_for_job(2) == []
    assert cluster.num_free_gpus() == 3
    with pytest.raises(AllocationError):
        cluster.assign(3, [2, 2])  # duplicate ids in one request
    cluster.check_invariants()
    assert cluster.num_free_gpus() == 3


def test_empty_assignment_is_a_noop_without_phantom_index_entries():
    cluster = build_cluster(num_nodes=1, gpus_per_node=4)
    cluster.assign(42, [])
    cluster.check_invariants()
    assert cluster.jobs_with_allocations() == []
    assert cluster.gpus_for_job(42) == []


def test_gpu_type_filter_is_case_insensitive():
    cluster = ClusterState()
    cluster.add_node(Node(node_id=0, num_gpus=2, gpu_type_name="v100"))
    cluster.add_node(Node(node_id=1, num_gpus=2, gpu_type_name="p100"))
    assert cluster.num_free_gpus("V100") == 2
    assert cluster.num_free_gpus("v100") == 2
    assert cluster.num_free_gpus("P100") == 2
    assert len(cluster.free_gpus("V100")) == 2
    assert [g.node_id for g in cluster.free_gpus("p100")] == [1, 1]
    # GPUType objects work as filters too.
    assert cluster.num_free_gpus(cluster.node(0).gpu_type) == 2


def test_failure_and_recovery_update_free_counters():
    cluster = build_cluster(num_nodes=3, gpus_per_node=4)
    cluster.assign(7, [0, 1, 5])
    affected = cluster.mark_node_failed(1)
    assert affected == [7]
    cluster.check_invariants()
    assert cluster.num_free_gpus() == 6  # node 1's three free GPUs excluded
    assert cluster.num_free_gpus("v100") == 6
    assert all(g.node_id != 1 for g in cluster.free_gpus())
    # Failing an already-failed node is a no-op for the counters.
    cluster.mark_node_failed(1)
    cluster.check_invariants()
    assert cluster.num_free_gpus() == 6

    cluster.mark_node_recovered(1)
    cluster.check_invariants()
    assert cluster.num_free_gpus() == 9
    cluster.mark_node_recovered(1)  # idempotent
    cluster.check_invariants()
    assert cluster.num_free_gpus() == 9


def test_remove_node_evicts_jobs_and_releases_aux_everywhere():
    cluster = build_cluster(num_nodes=3, gpus_per_node=4)
    cluster.assign(7, [0, 1, 5])  # spans nodes 0 and 1
    cluster.assign(8, [9])  # node 2, untouched by the removal
    cluster.reserve_aux(7, 0, 4.0, 8.0)
    cluster.reserve_aux(7, 1, 2.0, 4.0)
    cluster.reserve_aux(8, 2, 3.0, 16.0)

    evicted = cluster.remove_node(1)
    cluster.check_invariants()
    assert evicted == [7]
    # The evicted job's whole allocation is gone, including GPUs on node 0,
    # and its aux reservations on surviving nodes were released (no leak).
    assert cluster.gpus_for_job(7) == []
    assert cluster.node(0).aux_allocation(7) == (0.0, 0.0)
    assert cluster.node(0).aux_job_ids() == []
    # The unrelated job is untouched.
    assert [g.gpu_id for g in cluster.gpus_for_job(8)] == [9]
    assert cluster.node(2).aux_allocation(8) == (3.0, 16.0)
    assert cluster.total_gpus == 8
    assert cluster.num_free_gpus() == 7

    with pytest.raises(UnknownNodeError):
        cluster.remove_node(1)


def test_free_gpus_by_node_orders_by_local_id():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    cluster.assign(1, [0, 2])
    by_node = cluster.free_gpus_by_node()
    assert sorted(by_node) == [0, 1]
    assert [g.local_gpu_id for g in by_node[0]] == [1, 3]
    assert [g.local_gpu_id for g in by_node[1]] == [0, 1, 2, 3]
    cluster.mark_node_failed(1)
    assert sorted(cluster.free_gpus_by_node()) == [0]


def test_snapshot_is_deep_and_uses_public_node_state():
    cluster = build_cluster(num_nodes=2, gpus_per_node=4)
    cluster.assign(3, [0, 1])
    cluster.reserve_aux(3, 0, 6.0, 32.0)
    cluster.mark_node_failed(1)

    snap = cluster.snapshot()
    snap.check_invariants()
    assert snap.total_gpus == cluster.total_gpus
    assert [g.gpu_id for g in snap.gpus_for_job(3)] == [0, 1]
    assert snap.node(0).aux_allocation(3) == (6.0, 32.0)
    assert snap.node(1).failed
    assert snap.num_free_gpus() == cluster.num_free_gpus()

    # Mutating the snapshot must not leak into the original (and vice versa).
    snap.release_job(3)
    snap.check_invariants()
    cluster.check_invariants()
    assert cluster.gpus_for_job(3) != []
    cluster.assign(4, [2])
    assert snap.gpus[2].is_free


def test_randomized_mutations_never_break_invariants():
    rng = random.Random(42)
    cluster = build_cluster(num_nodes=6, gpus_per_node=4)
    next_job = 0
    live_jobs = []
    for _ in range(300):
        op = rng.random()
        if op < 0.4:
            want = rng.choice([1, 1, 2, 4])
            free = cluster.free_gpus()
            if len(free) >= want:
                job_id = next_job
                next_job += 1
                cluster.assign(job_id, [g.gpu_id for g in free[:want]])
                live_jobs.append(job_id)
        elif op < 0.7 and live_jobs:
            cluster.release_job(live_jobs.pop(rng.randrange(len(live_jobs))))
        elif op < 0.8:
            node_id = rng.choice(list(cluster.nodes))
            evicted = cluster.mark_node_failed(node_id)
            for job_id in evicted:
                cluster.release_job(job_id)
                if job_id in live_jobs:
                    live_jobs.remove(job_id)
        elif op < 0.9:
            failed = [n.node_id for n in cluster.nodes.values() if n.failed]
            if failed:
                cluster.mark_node_recovered(rng.choice(failed))
        elif cluster.num_nodes > 2:
            node_id = rng.choice(list(cluster.nodes))
            for job_id in cluster.remove_node(node_id):
                if job_id in live_jobs:
                    live_jobs.remove(job_id)
        cluster.check_invariants()
