"""Classic setuptools entry point (metadata inline; no pyproject.toml).

The environment has no network access and no ``wheel`` distribution, so the
PEP-517 editable path (which needs ``bdist_wheel``) is unavailable;
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to this
``setup.py develop`` path.  Metadata lives here directly so the documented
``pip install -e .`` produces a working ``repro`` package either way.
"""

from setuptools import find_packages, setup

setup(
    name="blox-repro",
    version="0.5.0",
    description=(
        "Reproduction of 'Blox: A Modular Toolkit for Deep Learning "
        "Schedulers' (EuroSys 2024), grown into a fast, scenario-rich, "
        "federated scheduling system"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
