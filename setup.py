"""Setup shim so editable installs work without the ``wheel`` package.

The environment has no network access and no ``wheel`` distribution, so the
PEP-517 editable path (which needs ``bdist_wheel``) is unavailable;
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to this
classic ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
