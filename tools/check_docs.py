#!/usr/bin/env python3
"""Link-check the documentation so documented paths and anchors can't rot.

Checks, for ``README.md`` and every ``docs/*.md``:

* **relative links** ``[text](path)`` resolve to an existing file or
  directory (relative to the linking file, like GitHub renders them);
* **anchor links** ``[text](#section)`` and ``[text](path#section)`` point
  at a heading that actually exists in the target file (GitHub's slug
  rules: lowercase, punctuation stripped, spaces to dashes, ``-N`` suffix
  for duplicates);
* **backtick file references** -- inline code spans that look like repo
  paths (``src/...``, ``docs/...``, ``tests/...``, ``tools/...`` or a
  top-level ``*.md``/``*.json``/``*.py``/``*.yml``) name files that exist,
  so prose like "see `src/repro/federation/engine.py`" breaks CI when the
  file moves;
* **module commands** -- every ``python -m repro.<module>`` mentioned
  anywhere (prose *and* fenced code blocks) resolves to a real module under
  ``src/`` that is runnable (a package with ``__main__.py``, or a plain
  module), so documented entry points like ``python -m repro.trace`` break
  CI when they move;
* **lint rule ids** -- every rule id documented in
  ``docs/static-analysis.md`` exists in ``repro.analysis.rule_catalog()``,
  and every registered rule is documented there, so the rule catalog and its
  reference page cannot drift apart.

External ``http(s)://`` / ``mailto:`` links are skipped (CI has no network
guarantee).  Exit status is the number of broken references; the CLI smoke
checks (documented commands answering ``--help``) live next to this in the
CI docs job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target) -- images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, used to build the anchor table of a file.
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
#: Inline code spans that look like repo-relative file paths.
CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
PATHLIKE_RE = re.compile(
    r"^(?:src|docs|tests|tools|experiments)/[\w./\-]+$|^[\w.\-]+\.(?:md|json|py|yml|toml)$"
)
#: Path-like spans that are *patterns or outputs*, not checked-in files.
PATH_ALLOWLIST = {
    "docs/*.md",
}
#: Documented runnable modules: ``python -m repro.bench --smoke`` etc.
MODULE_CMD_RE = re.compile(r"python\s+-m\s+(repro(?:\.\w+)+)")


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks (``` ... ```): their contents are not links."""
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str, seen: Dict[str, int]) -> str:
    """GitHub's heading-to-anchor slug, with duplicate numbering."""
    # Strip markdown emphasis/code markers, then non-word punctuation.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: Path) -> List[str]:
    seen: Dict[str, int] = {}
    anchors = []
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.append(github_slug(match.group(2), seen))
    return anchors


def check_file(md_path: Path) -> List[str]:
    errors: List[str] = []
    raw = md_path.read_text()
    text = strip_code_blocks(raw)
    rel = md_path.relative_to(REPO_ROOT)

    def check_anchor(target_file: Path, anchor: str, link: str) -> None:
        if anchor not in anchors_of(target_file):
            errors.append(f"{rel}: broken anchor {link!r} (no heading slug #{anchor})")

    for match in LINK_RE.finditer(text):
        link = match.group(1)
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = link.partition("#")
        if not path_part:
            check_anchor(md_path, anchor, link)
            continue
        target = (md_path.parent / path_part).resolve()
        if not target.exists():
            errors.append(f"{rel}: broken link {link!r} (no such file {path_part})")
            continue
        if anchor:
            if target.suffix.lower() != ".md":
                errors.append(f"{rel}: anchor on non-markdown target {link!r}")
            else:
                check_anchor(target, anchor, link)

    for match in CODE_SPAN_RE.finditer(text):
        span = match.group(1).strip()
        if span in PATH_ALLOWLIST or not PATHLIKE_RE.match(span):
            continue
        if not (REPO_ROOT / span).exists():
            errors.append(f"{rel}: stale file reference `{span}` (no such file)")

    # Module commands can hide inside fenced quickstart blocks, so scan the
    # raw text, not the stripped one.
    for module in sorted({m.group(1) for m in MODULE_CMD_RE.finditer(raw)}):
        base = REPO_ROOT / "src" / Path(*module.split("."))
        runnable = (base / "__main__.py").exists() or base.with_suffix(".py").exists()
        if not runnable:
            errors.append(
                f"{rel}: documented command `python -m {module}` is not "
                "runnable (no __main__.py package or module under src/)"
            )
    return errors


#: Rule ids as they appear in docs/static-analysis.md prose and tables.
RULE_ID_RE = re.compile(r"`([A-Z]\d{3})`")


def check_lint_rule_ids() -> List[str]:
    """docs/static-analysis.md and ``repro.analysis.rule_catalog()`` agree."""
    doc = REPO_ROOT / "docs" / "static-analysis.md"
    if not doc.exists():
        return ["missing documentation file: docs/static-analysis.md"]
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.analysis import rule_catalog
    except Exception as exc:  # pragma: no cover - import environment issues
        return [f"docs/static-analysis.md: cannot import repro.analysis ({exc})"]
    finally:
        sys.path.pop(0)
    registered = set(rule_catalog())
    documented = set(RULE_ID_RE.findall(doc.read_text()))
    errors = [
        f"docs/static-analysis.md: documents unknown rule id `{rule}` "
        "(not in repro.analysis.rule_catalog())"
        for rule in sorted(documented - registered)
    ]
    errors.extend(
        f"docs/static-analysis.md: registered rule `{rule}` is undocumented"
        for rule in sorted(registered - documented)
    )
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [f for f in files if not f.exists()]
    errors: List[str] = [
        f"missing documentation file: {f.relative_to(REPO_ROOT)}" for f in missing
    ]
    for md_path in files:
        if md_path.exists():
            errors.extend(check_file(md_path))
    errors.extend(check_lint_rule_ids())
    if errors:
        print(f"check_docs: {len(errors)} broken reference(s)", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        # Exit status = number of broken references (saturated so a huge
        # count cannot wrap to 0 through the 8-bit exit-code space).
        return min(len(errors), 125)
    checked = ", ".join(str(f.relative_to(REPO_ROOT)) for f in files)
    print(f"check_docs: OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
